#include "rfu/rx_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cassert>

#include "hw/memory_map.hpp"

namespace drmp::rfu {

void RxRfu::on_execute(Op op) {
  assert(op == Op::RxDrainWifi || op == Op::RxDrainUwb || op == Op::RxDrainWimax);
  (void)op;
  stage_ = 0;
  dst_ = args_.at(0);
  mode_idx_ = args_.at(1);
  check_fcs_ = (args_.at(2) & 1) != 0;
  status_addr_ = args_.at(3);
  assert(mode_idx_ < kNumModes);
  assert(buffers_[mode_idx_] != nullptr && "RxRfu not wired to buffers");
}

bool RxRfu::work_step() {
  phy::RxBuffer& buf = *buffers_[mode_idx_];
  switch (stage_) {
    case 0: {  // Latch the frame size, write the destination length word.
      assert(buf.frame_ready() && "RxDrain delegated with no frame pending");
      if (!bus_granted() || !bus_free()) return false;
      len_ = static_cast<u32>(buf.frame_bytes());
      nwords_ = static_cast<u32>(words_for_bytes(len_));
      widx_ = 0;
      bus_write(dst_ + hw::kPageLenOffset, len_);
      if (check_fcs_ && fcs_ != nullptr) fcs_->slave_reset(id());
      stage_ = 1;
      return false;
    }
    case 1: {  // Stream words buffer -> memory; slave snoops each word.
      if (widx_ < nwords_) {
        if (!bus_granted() || !bus_free()) return false;
        const Word w = buf.peek_word(widx_);
        bus_write(dst_ + hw::kPageDataOffset + widx_, w);
        if (check_fcs_ && fcs_ != nullptr) {
          const u32 valid = std::min<u32>(4, len_ - widx_ * 4);
          fcs_->on_secondary_trigger(id(), w, static_cast<u8>(valid));
        }
        ++widx_;
        return false;
      }
      // Retire the frame in place: only the rx-end timestamp survives, and
      // drop_front keeps the entry's byte storage in the ring for the next
      // delivery (zero-allocation drain).
      last_rx_end_ = buf.frame_rx_end();
      buf.drop_front();
      ++frames_;
      stage_ = 2;
      return false;
    }
    default: {  // Write the FCS status word.
      if (!bus_granted() || !bus_free()) return false;
      const bool ok = !check_fcs_ || (fcs_ != nullptr && fcs_->slave_crc(id()) == kCrc32Residue);
      bus_write(status_addr_, ok ? 1 : 0);
      return true;
    }
  }
}


void RxRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void RxRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
