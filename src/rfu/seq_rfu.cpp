#include "rfu/seq_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

namespace drmp::rfu {

void SeqRfu::on_execute(Op op) {
  stage_ = 0;
  const u32 mode = args_.at(0);
  assert(mode < kNumModes);
  switch (op) {
    case Op::SeqAssign: {
      status_addr_ = args_.at(1);
      status_word_ = counters_[mode];
      counters_[mode] = (counters_[mode] + 1) % moduli_[mode];
      break;
    }
    case Op::SeqCheck: {
      const u32 src_key = args_.at(1);
      const u32 seq_frag = args_.at(2);
      status_addr_ = args_.at(3);
      auto& cache = last_seen_[mode];
      auto it = cache.find(src_key);
      status_word_ = (it != cache.end() && it->second == seq_frag) ? 1 : 0;
      cache[src_key] = seq_frag;
      break;
    }
    default:
      assert(false && "SeqRfu: unknown op");
  }
  q_stall(2);
}

bool SeqRfu::work_step() {
  if (stage_ == 0) {
    if (!io_step()) return false;
    stage_ = 1;
  }
  if (!bus_granted() || !bus_free()) return false;
  bus_write(status_addr_, status_word_);
  return true;
}


void SeqRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void SeqRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
