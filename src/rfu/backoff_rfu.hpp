// Channel-access RFU — the medium-access timing engine. Configuration states
// cover the access mechanisms the thesis's protocol analysis identified
// (§2.3.2.1 #4-#6): CSMA/CA (WiFi DCF; UWB CAP with a different backoff), and
// TDM access (WiMAX UL/DL frames; UWB contention-free CTAs).
//
// It executes *detached* from the packet bus: after the IRC triggers it, it
// counts IFS/backoff slots (or waits for the TDMA slot boundary) against the
// medium's carrier-sense signal, asserting DONE when the channel is won. The
// bus is free for other modes meanwhile — this is the concurrency the
// three-mode experiments rely on.
#pragma once

#include <array>

#include "mac/nav.hpp"
#include "phy/phy_model.hpp"
#include "rfu/rfu.hpp"

namespace drmp::rfu {

class BackoffRfu final : public Rfu {
 public:
  explicit BackoffRfu(Env env)
      : Rfu(kBackoffRfu, "backoff", ReconfigMech::ContextSwitch, env) {}

  u8 nstates() const override { return 5; }
  bool detached_execution() const override { return true; }

  /// `navs` are the per-mode NAV timers (virtual carrier sense; null =
  /// physical CCA only), `listener` the station id whose audibility
  /// footprint carrier sense is evaluated against on contended media, and
  /// `eifs` the per-mode EIFS enables (ModeIdentity::eifs_enabled): modes
  /// with it set stretch the pre-contention IFS to EIFS while the medium
  /// reports the last reception damaged (Medium::eifs_pending).
  void wire(std::array<phy::Medium*, kNumModes> media, const sim::TimeBase* tb,
            std::array<const mac::NavTimer*, kNumModes> navs = {},
            int listener = phy::Medium::kOmniListener,
            std::array<bool, kNumModes> eifs = {}) {
    media_ = media;
    tb_ = tb;
    navs_ = navs;
    listener_ = listener;
    eifs_enabled_ = eifs;
    // Carrier onsets invalidate the access-wait sleep bounds below. (NAV
    // arms wake us through mac::NavTimer::subscribe, wired by the device.)
    for (std::size_t i = 0; i < kNumModes; ++i) {
      if (media_[i] == nullptr) continue;
      media_[i]->subscribe_wake(*this);
      // The receive-quality records exist for eifs_pending(); media of
      // modes that never honour EIFS skip the bookkeeping entirely.
      if (eifs_enabled_[i]) media_[i]->track_rx_quality();
    }
  }

  /// Deterministic PRNG seed (LFSR) so simulations are reproducible.
  void seed(u16 s) { lfsr_ = s == 0 ? 0xACE1u : s; }

  /// Attaches a flight recorder (null detaches): defer/EIFS edges land on
  /// `track`. All sites are counter-mutation edges inside executed work
  /// steps — on_running_skip never touches them — so the stream is
  /// deterministic across skip modes.
  void set_recorder(obs::FlightRecorder* rec, u16 track) noexcept {
    rec_ = rec;
    rec_track_ = track;
  }

  Cycle last_wait_cycles() const noexcept { return wait_cycles_; }
  /// Times a CSMA access had to defer to a busy medium (IFS restarted or
  /// backoff countdown frozen), cumulative over the device's lifetime — the
  /// contention-pressure counter of the fleet reports. Includes NAV-only
  /// deferrals.
  u64 defers() const noexcept { return defers_; }
  /// The subset of defers() caused purely by the NAV (virtual carrier
  /// sense): physical CCA heard nothing, an overheard reservation held.
  u64 nav_defers() const noexcept { return nav_defers_; }
  /// Completed pre-contention waits that were stretched to EIFS because the
  /// last reception was damaged (802.11 §9.2.3.4) — the garbled frame may
  /// have been data whose ACK this station could not decode, so it left
  /// SIFS + ACK air of extra room before contending.
  u64 eifs_waits() const noexcept { return eifs_waits_; }

 protected:
  // Ops:
  //   CsmaAccess{Wifi,Uwb} [mode_idx, retry_count]
  //   TdmaAccess{Wimax,Uwb} [mode_idx, slot_offset_us, slot_period_us]
  //   PcfRespondWifi [mode_idx] — grant once the medium has been idle for
  //   SIFS (the polled station's contention-free response, §2.3.2.1 #5).
  void on_execute(Op op) override;
  bool work_step() override;

  // Every access wait is a deterministic stretch between carrier edges, so
  // the whole Running phase sleeps under the quiescence contract:
  //   * TdmaWait polls medium.now() against a fixed future boundary
  //     (slotted WiMAX/UWB devices spend most of their lives here);
  //   * a deferred CSMA wait (carrier perceived busy or the NAV armed,
  //     defer already counted) is pure waiting until the later of the
  //     perceived-clear bound and the NAV expiry;
  //   * idle IFS counting and the backoff slot countdown are plain
  //     arithmetic until their completion tick; any new transmission wakes
  //     us through the medium's carrier subscription, and any overheard
  //     reservation through the NAV subscription, *before* the perceived
  //     state can change;
  //   * a SIFS response waits on the perceived-clear bound, then counts
  //     the medium's own idle reference to the SIFS (NAV does not apply:
  //     SIFS responses are part of an ongoing exchange).
  // on_running_skip replays the per-tick work_step effects (wait_cycles_,
  // IFS progress, slot countdown) in bulk.
  Cycle running_quiescent_for() const override;
  void on_running_skip(Cycle n) override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(access_phase_);
    ar.io(mode_idx_);
    ar.io(ifs_cycles_);
    ar.io(eifs_cycles_);
    ar.io(ifs_progress_);
    ar.io(slot_cycles_);
    ar.io(backoff_slots_);
    ar.io(slot_progress_);
    ar.io(tdma_target_);
    ar.io(wait_cycles_);
    ar.io(defers_);
    ar.io(nav_defers_);
    ar.io(eifs_waits_);
    ar.io(defer_edge_);
    ar.io(lfsr_);
  }

  u16 lfsr_next();
  /// Combined virtual-or-physical busy gate: the channel counts as busy
  /// while CCA perceives carrier (listener-qualified) or the mode's NAV
  /// holds a reservation at the medium's clock.
  bool channel_busy() const {
    const phy::Medium& medium = *media_[mode_idx_];
    return medium.cca_busy(listener_) || nav_active(medium.now());
  }
  bool nav_active(Cycle at) const {
    const mac::NavTimer* nav = navs_[mode_idx_];
    return nav != nullptr && nav->active(at);
  }
  Cycle nav_expiry() const {
    const mac::NavTimer* nav = navs_[mode_idx_];
    return nav != nullptr ? nav->expiry() : 0;
  }
  /// The IFS this access must observe before (re)contending: EIFS while the
  /// mode honours it and the last reception was damaged, DIFS otherwise.
  /// The condition can only flip at a delivery edge, which the listener
  /// perceives as carrier — so it is constant across any idle stretch a
  /// sleep bound below certifies, and the bound may use it directly.
  Cycle required_ifs() const {
    if (!eifs_enabled_[mode_idx_] || eifs_cycles_ <= ifs_cycles_) return ifs_cycles_;
    return media_[mode_idx_]->eifs_pending(listener_) ? eifs_cycles_ : ifs_cycles_;
  }

  enum class AccessPhase : u8 {
    Ifs,
    Backoff,
    TdmaWait,
    SifsResponse,
  } access_phase_ = AccessPhase::Ifs;
  u32 mode_idx_ = 0;
  Cycle ifs_cycles_ = 0;
  Cycle eifs_cycles_ = 0;  ///< SIFS + ACK air + DIFS (CSMA ops; 0 elsewhere).
  Cycle ifs_progress_ = 0;
  Cycle slot_cycles_ = 0;
  u32 backoff_slots_ = 0;
  Cycle slot_progress_ = 0;
  Cycle tdma_target_ = 0;
  Cycle wait_cycles_ = 0;
  u64 defers_ = 0;
  u64 nav_defers_ = 0;
  u64 eifs_waits_ = 0;
  bool defer_edge_ = false;  ///< Busy already counted for this deferral.

  u16 lfsr_ = 0xACE1u;
  obs::FlightRecorder* rec_ = nullptr;
  u16 rec_track_ = 0;
  std::array<bool, kNumModes> eifs_enabled_{};
  std::array<phy::Medium*, kNumModes> media_{};
  std::array<const mac::NavTimer*, kNumModes> navs_{};
  int listener_ = phy::Medium::kOmniListener;
  const sim::TimeBase* tb_ = nullptr;
};

}  // namespace drmp::rfu
