// Packing RFU — "Packaging of multiple MSDUs in a single MPDU is done only in
// WiMAX" (thesis §2.3.2.2 #1). Accumulates packed-SDU blocks (2-byte packing
// subheader + payload) into a staging page on transmit, and extracts the
// i-th packed SDU on receive.
#pragma once

#include "rfu/streaming.hpp"

namespace drmp::rfu {

class PackRfu final : public StreamingRfu {
 public:
  explicit PackRfu(Env env) : StreamingRfu(kPackRfu, "pack", ReconfigMech::ContextSwitch, env) {}

  u8 nstates() const override { return 1; }

 protected:
  // Ops:
  //   PackAppend  [src_page, dst_page, fc_fsn_word, reset_flag]
  //       fc_fsn_word: FC in bits[15:14], FSN in bits[13:11] (PackSubheader
  //       encoding sans length, which the RFU fills from the source page).
  //   PackExtract [src_page, dst_page, index, status_addr]
  //       Copies the index-th packed SDU payload to dst; writes its
  //       subheader word to status_addr (0xFFFFFFFF if out of range).
  void on_execute(Op op) override;
  bool work_step() override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(extract_);
    ar.io(src_);
    ar.io(dst_);
    ar.io(param_);
    ar.io(reset_);
    ar.io(status_addr_);
    ar.io(dst_len_);
    ar.io(status_word_);
  }

  int stage_ = 0;
  bool extract_ = false;
  u32 src_ = 0;
  u32 dst_ = 0;
  u32 param_ = 0;
  bool reset_ = false;
  u32 status_addr_ = 0;
  u32 dst_len_ = 0;
  Word status_word_ = 0;
};

}  // namespace drmp::rfu
