// Fragmentation RFU — fragmentation "is carried out by all three protocols"
// (thesis §2.3.2.1 #3). The CPU keeps the fragmentation bookkeeping in its
// ProtocolState (fragments_total, next_fragment_size — Fig. 4.2) and asks the
// RFU for one fragment slice per service request, so the RFU stays a pure
// streaming datapath unit.
#pragma once

#include "rfu/streaming.hpp"

namespace drmp::rfu {

class FragRfu final : public StreamingRfu {
 public:
  explicit FragRfu(Env env)
      : StreamingRfu(kFragRfu, "frag", ReconfigMech::ContextSwitch, env) {}

 protected:
  // Ops: Fragment{Wifi,Uwb,Wimax} [src_page, dst_page, threshold_bytes,
  // frag_index]. Copies bytes [k*thr, min((k+1)*thr, len)) of the source page
  // payload into the destination page. `threshold_bytes` must be a multiple
  // of 4 (the CPU-side API enforces this; word-aligned slices keep the
  // streaming unit trivial).
  void on_execute(Op op) override;
  bool work_step() override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(src_);
    ar.io(dst_);
    ar.io(threshold_);
    ar.io(index_);
    ar.io(slice_bytes_);
  }

  int stage_ = 0;
  u32 src_ = 0;
  u32 dst_ = 0;
  u32 threshold_ = 0;
  u32 index_ = 0;
  u32 slice_bytes_ = 0;
};

}  // namespace drmp::rfu
