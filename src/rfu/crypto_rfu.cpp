#include "rfu/crypto_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

namespace drmp::rfu {

std::vector<Word> CryptoRfu::make_config_blob(u8 state, std::span<const u8> key) {
  std::vector<Word> blob;
  blob.push_back(static_cast<Word>(key.size()));
  const auto packed = pack_words(key);
  blob.insert(blob.end(), packed.begin(), packed.end());
  // Pad with schedule words to model the real configuration-data volume.
  std::size_t target = 0;
  switch (state) {
    case cfg::kCryptoRc4: target = 8; break;   // Key + small state seed.
    case cfg::kCryptoAes: target = 48; break;  // 11 round keys ~ 44 words.
    case cfg::kCryptoDes: target = 36; break;  // 16 subkeys ~ 32 words.
    default: target = blob.size(); break;
  }
  while (blob.size() < target) blob.push_back(0xC0F1Du ^ static_cast<Word>(blob.size()));
  return blob;
}

Cycle CryptoRfu::stall_per_word(u8 state) {
  switch (state) {
    case cfg::kCryptoRc4: return 2;
    case cfg::kCryptoAes: return 4;
    case cfg::kCryptoDes: return 6;
    default: return 1;
  }
}

void CryptoRfu::on_reconfigured(u8 /*new_state*/, const std::vector<Word>& blob) {
  key_.clear();
  if (blob.empty()) return;
  const u32 key_len = blob[0];
  const std::span<const Word> key_words(blob.data() + 1, words_for_bytes(key_len));
  key_ = unpack_bytes(key_words, key_len);
}

void CryptoRfu::on_execute(Op op) {
  assert(!key_.empty() && "CryptoRfu used before key configuration");
  stage_ = 0;
  src_ = args_.at(0);
  dst_ = args_.at(1);
  nonce_lo_ = args_.size() > 2 ? args_.at(2) : 0;
  nonce_hi_ = args_.size() > 3 ? args_.at(3) : 0;
  switch (op) {
    case Op::EncryptRc4:
    case Op::EncryptAes:
    case Op::EncryptDes:
      decrypt_ = false;
      break;
    case Op::DecryptRc4:
    case Op::DecryptAes:
    case Op::DecryptDes:
      decrypt_ = true;
      break;
    default:
      assert(false && "CryptoRfu: unknown op");
  }
  q_read_page(src_);
}

void CryptoRfu::transform() {
  Bytes data = in_bytes_;
  switch (c_state_) {
    case cfg::kCryptoRc4: {
      // WEP-style: per-packet IV prepended to the key.
      Bytes iv_key;
      iv_key.push_back(static_cast<u8>(nonce_lo_));
      iv_key.push_back(static_cast<u8>(nonce_lo_ >> 8));
      iv_key.push_back(static_cast<u8>(nonce_lo_ >> 16));
      iv_key.insert(iv_key.end(), key_.begin(), key_.end());
      crypto::Rc4 rc4(iv_key);
      rc4.process(data);  // Symmetric: same path for decrypt.
      break;
    }
    case cfg::kCryptoAes: {
      crypto::Aes128 aes(key_);
      u8 nonce[16] = {};
      for (int i = 0; i < 4; ++i) nonce[i] = static_cast<u8>(nonce_lo_ >> (8 * i));
      for (int i = 0; i < 4; ++i) nonce[4 + i] = static_cast<u8>(nonce_hi_ >> (8 * i));
      aes.ctr_process(std::span<const u8>(nonce, 16), data);  // CTR: symmetric.
      break;
    }
    case cfg::kCryptoDes: {
      // DES-CBC over whole blocks; the tail bytes (< 8) are passed through in
      // the clear, as 802.16 leaves sub-block residue handling to the SA
      // (simplification documented in DESIGN.md).
      crypto::Des des(key_);
      u8 iv[8];
      for (int i = 0; i < 4; ++i) iv[i] = static_cast<u8>(nonce_lo_ >> (8 * i));
      for (int i = 0; i < 4; ++i) iv[4 + i] = static_cast<u8>(nonce_hi_ >> (8 * i));
      const std::size_t whole = data.size() - data.size() % 8;
      const std::span<u8> body(data.data(), whole);
      if (decrypt_) {
        des.cbc_decrypt(std::span<const u8>(iv, 8), body);
      } else {
        des.cbc_encrypt(std::span<const u8>(iv, 8), body);
      }
      break;
    }
    default:
      assert(false && "CryptoRfu: not configured");
  }
  out_bytes_ = std::move(data);
}

bool CryptoRfu::work_step() {
  switch (stage_) {
    case 0:
      if (!io_step()) return false;
      transform();
      q_stall(static_cast<Cycle>(words_for_bytes(in_bytes_.size())) * stall_per_word(c_state_));
      q_write_page(dst_);
      stage_ = 1;
      return false;
    case 1:
      return io_step();
    default:
      return true;
  }
}


void CryptoRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void CryptoRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
