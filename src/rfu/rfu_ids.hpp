// RFU identities, configuration states and the op-code vocabulary.
//
// "An op-code corresponds to a request for service from an RFU in a
// particular reconfiguration state" (thesis §3.6.1.2). The static mapping
// op-code -> (rfu_id, reconf_state, nargs) lives in the IRC's op_code_table
// (irc/tables.cpp); the enums here are shared by the IRC, the RFUs and the
// software API.
//
// The RFU set realizes Table 4.1 ("RFUs expected to be used for WiFi, WiMAX
// and UWB"), derived with the partitioning procedure of §3.6.2.3: start from
// the WiFi 'seed' set, then split/add units as WiMAX and UWB are introduced.
#pragma once

#include "common/types.hpp"

namespace drmp::rfu {

// ---- RFU ids (addresses are kRfuTriggerBase + id) ----
enum RfuId : u8 {
  kCryptoRfu = 2,      // MA-RFU: RC4 / AES / DES states (key schedule = config data).
  kHdrCheckRfu = 3,    // CS-RFU: CRC-16-CCITT (WiFi+UWB) / CRC-8 (WiMAX).
  kFcsRfu = 4,         // CS-RFU: CRC-32 engine; slave-snoops Tx/Rx streams.
  kFragRfu = 5,        // CS-RFU: fragmentation slicer.
  kDefragRfu = 6,      // CS-RFU: reassembly.
  kHeaderRfu = 7,      // MA-RFU: MPDU assembly / header parsing per protocol.
  kTxRfu = 8,          // CS-RFU: transmission state machine (master of FCS slave).
  kRxRfu = 9,          // CS-RFU: reception state machine (master of FCS slave).
  kAckRfu = 10,        // CS-RFU: autonomous ACK generation (time-critical path).
  kBackoffRfu = 11,    // CS-RFU: channel access timing (CSMA/CA and TDMA).
  kPackRfu = 12,       // CS-RFU: WiMAX packing/unpacking.
  kArqRfu = 13,        // MA-RFU: WiMAX ARQ window engine.
  kClassifierRfu = 14, // MA-RFU: WiMAX CID classifier.
  kSeqRfu = 15,        // CS-RFU: sequence numbering / duplicate detection.
};

inline constexpr u8 kRfuIdFirst = 2;
inline constexpr u8 kRfuIdLast = 15;

// ---- Configuration states (per RFU; 0 always means "uninitialized") ----
namespace cfg {
// CryptoRfu
inline constexpr u8 kCryptoRc4 = 1;
inline constexpr u8 kCryptoAes = 2;
inline constexpr u8 kCryptoDes = 3;
// HdrCheckRfu
inline constexpr u8 kHcsCrc16 = 1;  // Shared by WiFi and UWB (identical HCS).
inline constexpr u8 kHcsCrc8 = 2;   // WiMAX.
// FcsRfu
inline constexpr u8 kFcsCrc32 = 1;  // Shared by all three protocols.
// FragRfu / DefragRfu / HeaderRfu / TxRfu / RxRfu / AckRfu: per-protocol states.
inline constexpr u8 kProtoWifi = 1;
inline constexpr u8 kProtoUwb = 2;
inline constexpr u8 kProtoWimax = 3;
// BackoffRfu
inline constexpr u8 kAccessCsmaWifi = 1;
inline constexpr u8 kAccessCsmaUwb = 2;
inline constexpr u8 kAccessTdmaWimax = 3;
inline constexpr u8 kAccessTdmaUwb = 4;
inline constexpr u8 kAccessPcfWifi = 5;
// PackRfu / ArqRfu / ClassifierRfu / SeqRfu
inline constexpr u8 kDefaultState = 1;
}  // namespace cfg

// ---- Op-codes (8-bit, key of the op_code_table) ----
enum class Op : u8 {
  Nop = 0,
  // Crypto.
  EncryptRc4 = 0x10,
  DecryptRc4 = 0x11,
  EncryptAes = 0x12,
  DecryptAes = 0x13,
  EncryptDes = 0x14,
  DecryptDes = 0x15,
  // Header check sequence.
  HcsAppend16 = 0x20,
  HcsVerify16 = 0x21,
  HcsPatch8 = 0x22,   // WiMAX GMH byte 5 (in-header HCS).
  HcsVerify8 = 0x23,
  // Frame check sequence.
  FcsAppend = 0x28,
  FcsVerify = 0x29,
  // Fragmentation / reassembly.
  FragmentWifi = 0x30,
  FragmentUwb = 0x31,
  FragmentWimax = 0x32,
  DefragAppendWifi = 0x34,
  DefragAppendUwb = 0x35,
  DefragAppendWimax = 0x36,
  // MPDU assembly / header parse.
  AssembleWifi = 0x40,
  AssembleUwb = 0x41,
  AssembleWimax = 0x42,
  ParseWifi = 0x44,
  ParseUwb = 0x45,
  ParseWimax = 0x46,
  ExtractWifi = 0x48,  // Copy the MPDU body (sans header/HCS/FCS) to a page.
  ExtractUwb = 0x49,
  ExtractWimax = 0x4A,
  // Transmission / reception.
  TxFrameWifi = 0x50,
  TxFrameUwb = 0x51,
  TxFrameWimax = 0x52,
  /// TxFrameWifi with an explicit SIFS anchor (two extra argument words):
  /// the frame starts SIFS after the latched rx-end the *arming* ISR read
  /// from CtrlWord::kRespRxEndLo/Hi, not after whatever RxRfu drained last.
  TxFrameWifiAnchored = 0x53,
  RxDrainWifi = 0x54,
  RxDrainUwb = 0x55,
  RxDrainWimax = 0x56,
  // Acknowledgement generation (autonomous, time-critical).
  AckGenWifi = 0x58,
  AckGenUwb = 0x59,
  CtsGenWifi = 0x5A,  // CTS response to a received RTS (§2.3.2.2 #10).
  /// AckGenWifi with a Duration word: mid-burst fragment ACKs chain the NAV
  /// through the next fragment (802.11 §9.1.4 duration arithmetic).
  AckGenWifiDur = 0x5B,
  // Channel access timing.
  CsmaAccessWifi = 0x60,
  CsmaAccessUwb = 0x61,
  TdmaAccessWimax = 0x62,
  TdmaAccessUwb = 0x63,
  PcfRespondWifi = 0x64,  // SIFS-spaced response to a CF-Poll (§2.3.2.1 #5).
  // WiMAX packing.
  PackAppend = 0x68,
  PackExtract = 0x69,
  // WiMAX ARQ.
  ArqTag = 0x70,
  ArqFeedback = 0x71,
  // WiMAX classification.
  Classify = 0x78,
  // Sequence numbers.
  SeqAssign = 0x7C,
  SeqCheck = 0x7D,
};

/// Command word placed on the data bus with the first trigger of a service
/// delegation: op in bits [7:0], number of following argument words in
/// [15:8].
constexpr Word make_command_word(Op op, u8 nargs) {
  return static_cast<Word>(static_cast<u8>(op)) | (static_cast<Word>(nargs) << 8);
}
constexpr Op command_op(Word w) { return static_cast<Op>(w & 0xFF); }
constexpr u8 command_nargs(Word w) { return static_cast<u8>((w >> 8) & 0xFF); }

}  // namespace drmp::rfu
