#include "rfu/streaming.hpp"

namespace drmp::rfu {

using hw::kPageDataOffset;
using hw::kPageLenOffset;

void StreamingRfu::q_read_page(u32 page_addr) {
  ops_.push_back({IoOp::Kind::ReadLen, page_addr, 0, 0});
  ops_.push_back({IoOp::Kind::ReadData, page_addr, 0, 0});
}

void StreamingRfu::q_read_words(u32 addr, u32 nwords) {
  ops_.push_back({IoOp::Kind::ReadWords, addr, nwords, 0});
}

void StreamingRfu::q_write_page(u32 page_addr) {
  ops_.push_back({IoOp::Kind::WriteLen, page_addr, 0, 0});
  ops_.push_back({IoOp::Kind::WriteData, page_addr, 0, 0});
}

void StreamingRfu::q_patch_bytes(u32 page_addr, u32 byte_off) {
  ops_.push_back({IoOp::Kind::Patch, page_addr, byte_off, 0});
}

void StreamingRfu::q_write_len(u32 page_addr, u32 len_bytes) {
  ops_.push_back({IoOp::Kind::WriteLen, page_addr, len_bytes + 1, 0});
}

void StreamingRfu::q_stall(Cycle n) {
  if (n > 0) ops_.push_back({IoOp::Kind::Stall, 0, static_cast<u32>(n), 0});
}

bool StreamingRfu::io_step() {
  if (ops_.empty()) return true;
  if (step_op(ops_.front())) {
    ops_.pop_front();
  }
  return ops_.empty();
}

bool StreamingRfu::step_op(IoOp& op) {
  if (op.kind == IoOp::Kind::Stall) {
    return --op.a == 0;
  }
  // All remaining kinds need one packet-bus access this cycle.
  if (!bus_granted() || !bus_free()) return false;

  switch (op.kind) {
    case IoOp::Kind::ReadLen: {
      pending_len_ = bus_read(op.addr + kPageLenOffset);
      in_bytes_.clear();
      return true;
    }
    case IoOp::Kind::ReadData: {
      const u32 nwords = static_cast<u32>(words_for_bytes(pending_len_));
      if (op.progress < nwords) {
        const Word w = bus_read(op.addr + kPageDataOffset + op.progress);
        for (int i = 0; i < 4; ++i) {
          if (in_bytes_.size() < pending_len_) {
            in_bytes_.push_back(static_cast<u8>(w >> (8 * i)));
          }
        }
        ++op.progress;
      }
      return op.progress >= nwords;
    }
    case IoOp::Kind::ReadWords: {
      if (op.progress == 0) in_words_.clear();
      if (op.progress < op.a) {
        in_words_.push_back(bus_read(op.addr + op.progress));
        ++op.progress;
      }
      return op.progress >= op.a;
    }
    case IoOp::Kind::WriteLen: {
      // a==0 means "length of out_bytes_"; otherwise the explicit value + 1.
      const u32 len = op.a == 0 ? static_cast<u32>(out_bytes_.size()) : op.a - 1;
      bus_write(op.addr + kPageLenOffset, len);
      staged_words_ = pack_words(out_bytes_);
      return true;
    }
    case IoOp::Kind::WriteData: {
      if (op.progress == 0 && staged_words_.empty()) {
        staged_words_ = pack_words(out_bytes_);
      }
      if (op.progress < staged_words_.size()) {
        bus_write(op.addr + kPageDataOffset + op.progress, staged_words_[op.progress]);
        ++op.progress;
      }
      if (op.progress >= staged_words_.size()) {
        staged_words_.clear();
        return true;
      }
      return false;
    }
    case IoOp::Kind::Patch: {
      // Read-modify-write of the word range covering
      // [byte_off, byte_off + out_bytes_.size()).
      const u32 byte_off = op.a;
      const u32 w0 = byte_off / 4;
      const u32 w1 = (byte_off + static_cast<u32>(out_bytes_.size()) + 3) / 4;
      if (!patch_loaded_) {
        patch_word0_ = w0;
        patch_nwords_ = w1 - w0;
        if (op.progress < patch_nwords_) {
          patch_words_.push_back(bus_read(op.addr + kPageDataOffset + w0 + op.progress));
          ++op.progress;
          if (op.progress == patch_nwords_) {
            // Apply the patch locally, then start writing back.
            for (std::size_t i = 0; i < out_bytes_.size(); ++i) {
              const u32 bo = byte_off + static_cast<u32>(i) - w0 * 4;
              Word& w = patch_words_[bo / 4];
              w &= ~(0xFFu << (8 * (bo % 4)));
              w |= static_cast<Word>(out_bytes_[i]) << (8 * (bo % 4));
            }
            patch_loaded_ = true;
            op.progress = 0;
          }
        }
        return false;
      }
      if (op.progress < patch_nwords_) {
        bus_write(op.addr + kPageDataOffset + patch_word0_ + op.progress,
                  patch_words_[op.progress]);
        ++op.progress;
      }
      if (op.progress >= patch_nwords_) {
        patch_words_.clear();
        patch_loaded_ = false;
        return true;
      }
      return false;
    }
    case IoOp::Kind::Stall:
      break;  // Handled above.
  }
  return true;
}

}  // namespace drmp::rfu
