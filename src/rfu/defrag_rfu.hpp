// Defragmentation (reassembly) RFU — the receive-side counterpart of the
// fragmentation unit. Appends a received fragment's payload to the mode's
// reassembly page; the CPU protocol control decides when the MSDU is complete
// (it tracks fragment numbers via the parsed header fields).
#pragma once

#include "rfu/streaming.hpp"

namespace drmp::rfu {

class DefragRfu final : public StreamingRfu {
 public:
  explicit DefragRfu(Env env)
      : StreamingRfu(kDefragRfu, "defrag", ReconfigMech::ContextSwitch, env) {}

 protected:
  // Ops: DefragAppend{Wifi,Uwb,Wimax} [src_page, dst_page, reset_flag].
  // With reset_flag the destination is cleared first (first fragment).
  // Appends the source page payload at the current destination length; all
  // non-final fragments are threshold-sized (word-aligned), so the append
  // offset is always word-aligned.
  void on_execute(Op op) override;
  bool work_step() override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(src_);
    ar.io(dst_);
    ar.io(reset_);
    ar.io(dst_len_);
  }

  int stage_ = 0;
  u32 src_ = 0;
  u32 dst_ = 0;
  bool reset_ = false;
  u32 dst_len_ = 0;
};

}  // namespace drmp::rfu
