#include "rfu/frag_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cassert>

#include "hw/memory_map.hpp"

namespace drmp::rfu {

void FragRfu::on_execute(Op op) {
  assert(op == Op::FragmentWifi || op == Op::FragmentUwb || op == Op::FragmentWimax);
  (void)op;
  stage_ = 0;
  src_ = args_.at(0);
  dst_ = args_.at(1);
  threshold_ = args_.at(2);
  index_ = args_.at(3);
  assert(threshold_ % 4 == 0 && "fragment threshold must be word-aligned");
  // Read the source length first to bound the slice.
  q_read_words(src_ + hw::kPageLenOffset, 1);
}

bool FragRfu::work_step() {
  switch (stage_) {
    case 0: {
      if (!io_step()) return false;
      const u32 len = in_words_.at(0);
      const u32 begin = std::min(threshold_ * index_, len);
      const u32 end = std::min(begin + threshold_, len);
      slice_bytes_ = end - begin;
      const u32 first_word = begin / 4;
      const u32 nwords = static_cast<u32>(words_for_bytes(slice_bytes_));
      if (nwords > 0) {
        q_read_words(src_ + hw::kPageDataOffset + first_word, nwords);
      }
      stage_ = 1;
      return false;
    }
    case 1: {
      if (!io_step()) return false;
      out_bytes_ = unpack_bytes(in_words_, slice_bytes_);
      q_write_page(dst_);
      stage_ = 2;
      return false;
    }
    default:
      return io_step();
  }
}


void FragRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void FragRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
