// ACK-generation RFU — the autonomous, time-critical acknowledgement path:
// "A proposed ACK-generating hardware functional unit means that even
// acknowledgment frames can be sent without involving the CPU" (thesis §3.5),
// essential for the Immediate-ACK policy of IEEE 802.15.3 whose SIFS deadline
// a software path could not guarantee.
//
// Builds the ACK frame in the mode's Ack page, then stages it in the Tx
// translational buffer with an earliest-start of rx_end + SIFS.
#pragma once

#include <array>

#include "phy/buffers.hpp"
#include "rfu/rx_rfu.hpp"
#include "rfu/streaming.hpp"

namespace drmp::rfu {

class AckRfu final : public StreamingRfu {
 public:
  explicit AckRfu(Env env) : StreamingRfu(kAckRfu, "ack", ReconfigMech::ContextSwitch, env) {}

  void wire(RxRfu* rx, std::array<phy::TxBuffer*, kNumModes> buffers,
            const sim::TimeBase* tb) {
    rx_ = rx;
    buffers_ = buffers;
    tb_ = tb;
  }

  /// Total control frames staged (ACKs + CTSs).
  u64 acks_generated() const noexcept { return acks_; }
  /// CTS responses among them (RTS/CTS handshake, §2.3.2.2 #10).
  u64 ctss_generated() const noexcept { return ctss_; }

 protected:
  // Ops:
  //   AckGenWifi [ra_lo, ra_hi, mode_idx, ack_page] — ACK to transmitter RA.
  //   AckGenWifiDur [ra_lo, ra_hi, mode_idx, ack_page, duration_us] — same,
  //   with the Duration field chaining the NAV through the next fragment of
  //   a SIFS-spaced burst.
  //   CtsGenWifi [ra_lo, ra_hi, mode_idx, ack_page, duration_us] — CTS to
  //   RTS sender RA, carrying the remaining NAV reservation.
  //   AckGenUwb  [pnid_src, dest_id, mode_idx, ack_page] — Imm-ACK.
  void on_execute(Op op) override;
  bool work_step() override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(mode_idx_);
    ar.io(ack_page_);
    ar.io(sifs_us_);
    ar.io(slack_us_);
    ar.io(kind_);
    ar.io(acks_);
    ar.io(ctss_);
  }

  int stage_ = 0;
  u32 mode_idx_ = 0;
  u32 ack_page_ = 0;
  double sifs_us_ = 10.0;
  /// Lateness tolerance for the perishable response
  /// (mac::response_slack_us of the op's protocol timing).
  double slack_us_ = 30.0;
  phy::TxKind kind_ = phy::TxKind::kAck;  ///< From the executing op.
  u64 acks_ = 0;
  u64 ctss_ = 0;

  RxRfu* rx_ = nullptr;
  std::array<phy::TxBuffer*, kNumModes> buffers_{};
  const sim::TimeBase* tb_ = nullptr;
};

}  // namespace drmp::rfu
