#include "rfu/backoff_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cassert>

#include "mac/wifi_frames.hpp"

namespace drmp::rfu {

u16 BackoffRfu::lfsr_next() {
  // 16-bit Fibonacci LFSR (taps 16,14,13,11) — a hardware-faithful PRNG.
  const u16 bit = static_cast<u16>(((lfsr_ >> 0) ^ (lfsr_ >> 2) ^ (lfsr_ >> 3) ^
                                    (lfsr_ >> 5)) & 1u);
  lfsr_ = static_cast<u16>((lfsr_ >> 1) | (bit << 15));
  return lfsr_;
}

void BackoffRfu::on_execute(Op op) {
  mode_idx_ = args_.at(0);
  assert(mode_idx_ < kNumModes);
  phy::Medium* medium = media_[mode_idx_];
  assert(medium != nullptr && tb_ != nullptr && "BackoffRfu not wired");
  const auto& t = medium->timing();
  wait_cycles_ = 0;
  defer_edge_ = false;

  switch (op) {
    case Op::CsmaAccessWifi:
    case Op::CsmaAccessUwb: {
      assert(c_state_ == cfg::kAccessCsmaWifi || c_state_ == cfg::kAccessCsmaUwb);
      const u32 retry = args_.at(1);
      // CW doubles per retry: CW = min(cw_max, (cw_min+1)*2^retry - 1).
      u64 cw = (static_cast<u64>(t.cw_min) + 1) << std::min<u32>(retry, 16);
      cw = std::min<u64>(cw - 1, t.cw_max);
      backoff_slots_ = static_cast<u32>(lfsr_next() % (cw + 1));
      ifs_cycles_ = tb_->us_to_cycles(t.difs_us);
      // EIFS (802.11 §9.2.3.4): SIFS + the air time of an ACK at the lowest
      // mandatory rate + DIFS. Computed here so required_ifs() can swap it
      // in whenever the mode honours EIFS and the last reception was
      // damaged; only WiFi defines the figure (the UWB CAP keeps BIFS).
      eifs_cycles_ =
          op == Op::CsmaAccessWifi
              ? tb_->us_to_cycles(t.sifs_us + mac::wifi::ack_air_us(t) + t.difs_us)
              : ifs_cycles_;
      slot_cycles_ = tb_->us_to_cycles(t.slot_us);
      ifs_progress_ = 0;
      slot_progress_ = 0;
      access_phase_ = AccessPhase::Ifs;
      break;
    }
    case Op::PcfRespondWifi: {
      // Contention-free response: the point coordinator's poll just ended, so
      // transmit as soon as the medium has been idle for SIFS — no DIFS, no
      // backoff (§2.3.2.1 #5).
      assert(c_state_ == cfg::kAccessPcfWifi);
      ifs_cycles_ = tb_->us_to_cycles(t.sifs_us);
      access_phase_ = AccessPhase::SifsResponse;
      break;
    }
    case Op::TdmaAccessWimax:
    case Op::TdmaAccessUwb: {
      assert(c_state_ == cfg::kAccessTdmaWimax || c_state_ == cfg::kAccessTdmaUwb);
      const double offset_us = static_cast<double>(args_.at(1));
      const double period_us = static_cast<double>(args_.at(2));
      const Cycle period = tb_->us_to_cycles(period_us);
      const Cycle offset = tb_->us_to_cycles(offset_us);
      const Cycle now = medium->now();
      // Next slot boundary at k*period + offset strictly after `now`.
      const Cycle base = (period == 0) ? now : (now / period) * period;
      tdma_target_ = base + offset;
      if (tdma_target_ <= now) tdma_target_ += period;
      access_phase_ = AccessPhase::TdmaWait;
      break;
    }
    default:
      assert(false && "BackoffRfu: unknown op");
  }
}

Cycle BackoffRfu::running_quiescent_for() const {
  const phy::Medium& medium = *media_[mode_idx_];
  // With the medium leading the cycle, a work_step at cycle u reads
  // medium.now() == u+1; medium.now() equals the index of our next tick at
  // both contract evaluation points (post-own-tick and run entry). Every
  // bound below is the count of ticks strictly before the first tick that
  // does anything beyond wait accounting; carrier onsets wake us through
  // the medium subscription, NAV arms through the NavTimer subscription,
  // before the perceived state can change.
  const Cycle next_tick = medium.now();
  switch (access_phase_) {
    case AccessPhase::TdmaWait:
      // Completes at the tick that observes medium.now() >= target.
      return sim::ticks_until_reading(tdma_target_, next_tick);
    case AccessPhase::Ifs: {
      if (channel_busy()) {
        // The busy-onset tick (defer count + IFS restart) must execute;
        // after it the wait is pure until both busy sources have lapsed:
        // the perceived-clear chain and the NAV reservation each cover a
        // contiguous stretch from now, so their union holds to the max.
        if (!defer_edge_) return 0;
        Cycle clear = medium.cca_clear_at(listener_);
        if (nav_active(next_tick)) clear = std::max(clear, nav_expiry());
        return sim::ticks_until_reading(clear, next_tick);
      }
      // Idle: pure counting; the tick whose increment reaches the required
      // IFS (DIFS, or EIFS after a damaged reception — constant across the
      // idle stretch, see required_ifs) acts (grant or phase change). An
      // already-scheduled perceived onset (detection latency) bounds the
      // sleep — new transmissions and NAV arms wake us.
      const Cycle need = required_ifs();
      const Cycle count = need > ifs_progress_ + 1 ? need - 1 - ifs_progress_ : 0;
      return std::min(
          count, sim::ticks_until_reading(medium.cca_busy_onset_at(listener_), next_tick));
    }
    case AccessPhase::Backoff: {
      // A busy channel (carrier or NAV) flips the phase on the very next
      // tick.
      if (channel_busy() || slot_cycles_ == 0) return 0;
      // Ticks until the decrement that wins the channel, bounded by any
      // scheduled perceived onset as above.
      const Cycle to_grant = (slot_cycles_ - slot_progress_) +
                             static_cast<Cycle>(backoff_slots_ - 1) * slot_cycles_;
      const Cycle count = to_grant > 1 ? to_grant - 1 : 0;
      return std::min(
          count, sim::ticks_until_reading(medium.cca_busy_onset_at(listener_), next_tick));
    }
    case AccessPhase::SifsResponse: {
      // PCF contention-free response (the last carrier-gated poll loop, a
      // ROADMAP PR-3 follow-up): a pure wait on the perceived-idle
      // reference. NAV does not apply — the response is part of an ongoing
      // exchange.
      if (medium.cca_busy(listener_)) {
        return sim::ticks_until_reading(medium.cca_clear_at(listener_), next_tick);
      }
      // Completes at the tick observing cca_idle_for >= SIFS; the idle
      // reference advances one per tick, so the count mirrors the IFS
      // arithmetic, bounded by any scheduled perceived onset.
      const Cycle idle = medium.cca_idle_for(listener_);
      const Cycle count = ifs_cycles_ > idle + 1 ? ifs_cycles_ - 1 - idle : 0;
      return std::min(
          count, sim::ticks_until_reading(medium.cca_busy_onset_at(listener_), next_tick));
    }
  }
  return 0;
}

void BackoffRfu::on_running_skip(Cycle n) {
  // Replays n skipped work_step calls for the quiescent stretch the bound
  // above certified (constant channel state — carrier AND NAV — throughout).
  wait_cycles_ += n;
  switch (access_phase_) {
    case AccessPhase::Ifs:
      if (!channel_busy()) {
        defer_edge_ = false;  // First idle tick clears the edge flag.
        ifs_progress_ += n;
      }
      break;
    case AccessPhase::Backoff: {
      const Cycle total = slot_progress_ + n;
      backoff_slots_ -= static_cast<u32>(total / slot_cycles_);
      slot_progress_ = total % slot_cycles_;
      break;
    }
    case AccessPhase::TdmaWait:
    case AccessPhase::SifsResponse:
      break;  // Pure waits.
  }
}

bool BackoffRfu::work_step() {
  phy::Medium& medium = *media_[mode_idx_];
  ++wait_cycles_;
  switch (access_phase_) {
    case AccessPhase::Ifs: {
      // The channel must be idle — physically (listener-qualified CCA) and
      // virtually (NAV) — continuously for the IFS (DIFS, or EIFS after a
      // damaged reception).
      if (channel_busy()) {
        if (!defer_edge_) {
          defer_edge_ = true;
          ++defers_;
          const bool nav_only = !medium.cca_busy(listener_);
          if (nav_only) ++nav_defers_;
          DRMP_OBS(rec_, medium.now(),
                   nav_only ? obs::EventKind::kNavDefer
                            : obs::EventKind::kCcaDefer,
                   rec_track_, static_cast<i64>(mode_idx_));
        }
        ifs_progress_ = 0;
        return false;
      }
      defer_edge_ = false;
      const Cycle need = required_ifs();
      if (++ifs_progress_ < need) return false;
      if (need > ifs_cycles_) {
        ++eifs_waits_;
        DRMP_OBS(rec_, medium.now(), obs::EventKind::kEifsWait, rec_track_,
                 static_cast<i64>(mode_idx_));
      }
      if (backoff_slots_ == 0) return true;
      access_phase_ = AccessPhase::Backoff;
      slot_progress_ = 0;
      return false;
    }
    case AccessPhase::Backoff: {
      // Decrement one slot per slot-time of idle channel; freeze while busy
      // (and re-wait the IFS, per DCF).
      if (channel_busy()) {
        ++defers_;
        const bool nav_only = !medium.cca_busy(listener_);
        if (nav_only) ++nav_defers_;
        DRMP_OBS(rec_, medium.now(),
                 nav_only ? obs::EventKind::kNavDefer
                          : obs::EventKind::kCcaDefer,
                 rec_track_, static_cast<i64>(mode_idx_));
        defer_edge_ = true;
        access_phase_ = AccessPhase::Ifs;
        ifs_progress_ = 0;
        return false;
      }
      if (++slot_progress_ >= slot_cycles_) {
        slot_progress_ = 0;
        if (--backoff_slots_ == 0) return true;
      }
      return false;
    }
    case AccessPhase::TdmaWait:
      return medium.now() >= tdma_target_;
    case AccessPhase::SifsResponse:
      return !medium.cca_busy(listener_) && medium.cca_idle_for(listener_) >= ifs_cycles_;
  }
  return false;
}


void BackoffRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void BackoffRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
