// ARQ RFU — "Automatic Repeat Request is a unique operation performed in
// WiMAX and involves a separate state-machine" (thesis §2.3.2.2 #3). A
// Memory-Access RFU whose configuration blob carries the window parameters.
// Keeps per-connection (CID) transmit windows: assigns block sequence numbers
// on transmit and slides the window on cumulative feedback, reporting
// retransmission needs to the CPU via status words.
#pragma once

#include <map>

#include "rfu/streaming.hpp"

namespace drmp::rfu {

class ArqRfu final : public StreamingRfu {
 public:
  explicit ArqRfu(Env env) : StreamingRfu(kArqRfu, "arq", ReconfigMech::MemoryAccess, env) {}

  u8 nstates() const override { return 1; }

  /// Configuration blob: [window_size, bsn_modulus, retry_limit, padding...].
  static std::vector<Word> make_config_blob(u32 window_size = 16, u32 modulus = 64,
                                            u32 retry_limit = 4);

  struct CidState {
    u32 next_bsn = 0;      ///< Next BSN to assign.
    u32 window_start = 0;  ///< Oldest unacknowledged BSN.

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(next_bsn);
      ar.io(window_start);
    }
  };
  const CidState* cid_state(u16 cid) const {
    auto it = windows_.find(cid);
    return it == windows_.end() ? nullptr : &it->second;
  }
  u32 window_size() const noexcept { return window_size_; }

 protected:
  // Ops:
  //   ArqTag      [cid, status_addr] — status := assigned BSN, or 0xFFFFFFFF
  //                if the window is full (transmit must stall).
  //   ArqFeedback [cid, cumulative_bsn, status_addr] — acknowledge all blocks
  //                with BSN < cumulative_bsn; status := newly acked count.
  void on_execute(Op op) override;
  bool work_step() override;
  void on_reconfigured(u8 new_state, const std::vector<Word>& blob) override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(status_addr_);
    ar.io(status_word_);
    ar.io(window_size_);
    ar.io(modulus_);
    ar.io(windows_);
  }

  int stage_ = 0;
  u32 status_addr_ = 0;
  Word status_word_ = 0;

  u32 window_size_ = 16;
  u32 modulus_ = 64;
  std::map<u16, CidState> windows_;
};

}  // namespace drmp::rfu
