#include "rfu/tx_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <algorithm>
#include <cassert>

#include "hw/memory_map.hpp"
#include "mac/protocol.hpp"

namespace drmp::rfu {

void TxRfu::on_execute(Op op) {
  assert(op == Op::TxFrameWifi || op == Op::TxFrameWifiAnchored ||
         op == Op::TxFrameUwb || op == Op::TxFrameWimax);
  stage_ = 0;
  src_ = args_.at(0);
  mode_idx_ = args_.at(1);
  append_fcs_ = (args_.at(2) & 1) != 0;
  sifs_after_rx_ = (args_.at(2) & 2) != 0;
  explicit_anchor_ = op == Op::TxFrameWifiAnchored;
  anchor_ = explicit_anchor_ ? (static_cast<Cycle>(args_.at(3)) |
                                (static_cast<Cycle>(args_.at(4)) << 32))
                             : 0;
  proto_ = op == Op::TxFrameUwb
               ? mac::Protocol::Uwb
               : (op == Op::TxFrameWimax ? mac::Protocol::WiMax : mac::Protocol::WiFi);
  assert(mode_idx_ < kNumModes);
  assert(buffers_[mode_idx_] != nullptr && "TxRfu not wired to buffers");
}

Cycle TxRfu::earliest_start() const {
  // SIFS anchor for responses within an ongoing exchange (opts bit1): the
  // end of the frame that released us plus SIFS. The anchored op carries
  // that end explicitly (latched at arm time); the legacy form falls back
  // to the last drained reception. Everything else was released by a
  // channel-access op and may go immediately.
  if (!sifs_after_rx_ || tb_ == nullptr) return 0;
  const Cycle rx_end =
      explicit_anchor_ ? anchor_ : (rx_ != nullptr ? rx_->last_rx_end() : 0);
  return rx_end + tb_->us_to_cycles(mac::timing_for(proto_).sifs_us);
}

Cycle TxRfu::latest_start() const {
  // SIFS-anchored data is perishable like an ACK, with a wider tolerance:
  // the fragment/assemble/HCS pipeline sits between the releasing CTS and
  // the staging, so allow two extra detection latencies beyond the ACK
  // slack before abandoning the exchange to its ACK-timeout retry.
  if (!sifs_after_rx_ || tb_ == nullptr) return ~Cycle{0};
  const auto t = mac::timing_for(proto_);
  return earliest_start() +
         tb_->us_to_cycles(mac::response_slack_us(t) +
                           2.0 * mac::cca_latency_default_us(t));
}

bool TxRfu::work_step() {
  phy::TxBuffer& buf = *buffers_[mode_idx_];
  switch (stage_) {
    case 0: {  // Read the page length; reset the slave's snoop context.
      if (!bus_granted() || !bus_free()) return false;
      len_ = bus_read(src_ + hw::kPageLenOffset);
      nwords_ = static_cast<u32>(words_for_bytes(len_));
      widx_ = 0;
      if (append_fcs_ && fcs_ != nullptr) fcs_->slave_reset(id());
      buf.begin_frame();
      stage_ = 1;
      return false;
    }
    case 1: {  // Stream payload words to the buffer; slave snoops each word.
      if (widx_ < nwords_) {
        if (!bus_granted() || !bus_free()) return false;
        const Word w = bus_read(src_ + hw::kPageDataOffset + widx_);
        const u32 valid = std::min<u32>(4, len_ - widx_ * 4);
        for (u32 i = 0; i < valid; ++i) {
          buf.push_byte(static_cast<u8>(w >> (8 * i)));
        }
        if (append_fcs_ && fcs_ != nullptr) {
          fcs_->on_secondary_trigger(id(), w, static_cast<u8>(valid));
        }
        ++widx_;
        return false;
      }
      if (!append_fcs_) {
        buf.end_frame(len_, earliest_start(), latest_start(),
                      sifs_after_rx_ ? phy::TxKind::kSifsData : phy::TxKind::kData);
        ++frames_;
        return true;
      }
      // Ask the slave to append the snooped FCS, then hand the bus over.
      if (!bus_granted() || !bus_free()) return false;
      fcs_->slave_request_append(id(), src_, len_);
      bus_write(hw::kOverrideAddr, kFcsRfu);
      stage_ = 2;
      return false;
    }
    case 2: {  // Wait for the slave to write the FCS and hand the bus back.
      if (fcs_->slave_busy()) return false;
      // Re-read the words covering the appended FCS bytes [len_, len_+4).
      widx_ = len_ / 4;
      nwords_ = static_cast<u32>(words_for_bytes(len_ + 4));
      stage_ = 3;
      return false;
    }
    case 3: {  // Stream the FCS tail into the buffer.
      if (widx_ < nwords_) {
        if (!bus_granted() || !bus_free()) return false;
        const Word w = bus_read(src_ + hw::kPageDataOffset + widx_);
        // Bytes before len_ in the boundary word were already pushed; the
        // buffer end_frame() truncation plus byte-exact re-push below keeps
        // the stream correct: we only push the bytes in [len_, len_+4).
        const u32 word_base = widx_ * 4;
        for (u32 i = 0; i < 4; ++i) {
          const u32 off = word_base + i;
          if (off >= len_ && off < len_ + 4) {
            buf.push_byte(static_cast<u8>(w >> (8 * i)));
          }
        }
        ++widx_;
        return false;
      }
      buf.end_frame(len_ + 4, earliest_start(), latest_start(),
                    sifs_after_rx_ ? phy::TxKind::kSifsData : phy::TxKind::kData);
      ++frames_;
      return true;
    }
    default:
      return true;
  }
}


void TxRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void TxRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
