#include "rfu/pack_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

#include "hw/memory_map.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp::rfu {

void PackRfu::on_execute(Op op) {
  stage_ = 0;
  src_ = args_.at(0);
  dst_ = args_.at(1);
  param_ = args_.at(2);
  if (op == Op::PackAppend) {
    extract_ = false;
    reset_ = args_.at(3) != 0;
    q_read_words(dst_ + hw::kPageLenOffset, 1);
    q_read_page(src_);
  } else {
    assert(op == Op::PackExtract);
    extract_ = true;
    status_addr_ = args_.at(3);
    q_read_page(src_);
  }
}

bool PackRfu::work_step() {
  if (!extract_) {
    switch (stage_) {
      case 0: {
        if (!io_step()) return false;
        dst_len_ = reset_ ? 0 : in_words_.at(0);
        // Build subheader + payload block. Blocks are not word-aligned in
        // general; pad the *destination offset* to word alignment so the
        // streaming patch stays aligned (the real unit is byte-addressed;
        // alignment padding is stripped by the length bookkeeping below).
        mac::wimax::PackSubheader sh = mac::wimax::PackSubheader::decode(
            static_cast<u16>(param_ & 0xFFFF));
        sh.len = static_cast<u16>(in_bytes_.size());
        out_bytes_.clear();
        put_le16(out_bytes_, sh.encode());
        out_bytes_.insert(out_bytes_.end(), in_bytes_.begin(), in_bytes_.end());
        // Blocks are byte-packed (wire format matches the 802.16 codec); the
        // patch path read-modify-writes the boundary words.
        q_patch_bytes(dst_, dst_len_);
        q_write_len(dst_, dst_len_ + static_cast<u32>(out_bytes_.size()));
        stage_ = 1;
        return false;
      }
      default:
        return io_step();
    }
  }
  // Extract path.
  switch (stage_) {
    case 0: {
      if (!io_step()) return false;
      // Walk the byte-packed blocks.
      std::size_t off = 0;
      u32 idx = 0;
      bool found = false;
      mac::wimax::PackSubheader sh;
      Bytes payload;
      while (off + 2 <= in_bytes_.size()) {
        sh = mac::wimax::PackSubheader::decode(get_le16(in_bytes_, off));
        const std::size_t body_at = off + 2;
        if (body_at + sh.len > in_bytes_.size()) break;
        if (idx == param_) {
          payload.assign(in_bytes_.begin() + static_cast<std::ptrdiff_t>(body_at),
                         in_bytes_.begin() + static_cast<std::ptrdiff_t>(body_at + sh.len));
          found = true;
          break;
        }
        off += 2 + sh.len;
        ++idx;
      }
      status_word_ = found ? sh.encode() : 0xFFFFFFFFu;
      out_bytes_ = std::move(payload);
      if (found) q_write_page(dst_);
      stage_ = 1;
      return false;
    }
    case 1: {
      if (!io_step()) return false;
      stage_ = 2;
      [[fallthrough]];
    }
    default: {
      if (!bus_granted() || !bus_free()) return false;
      bus_write(status_addr_, status_word_);
      return true;
    }
  }
}


void PackRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void PackRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
