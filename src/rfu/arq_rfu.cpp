#include "rfu/arq_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

namespace drmp::rfu {

std::vector<Word> ArqRfu::make_config_blob(u32 window_size, u32 modulus, u32 retry_limit) {
  std::vector<Word> blob = {window_size, modulus, retry_limit};
  while (blob.size() < 10) blob.push_back(0);
  return blob;
}

void ArqRfu::on_reconfigured(u8 /*state*/, const std::vector<Word>& blob) {
  if (blob.size() >= 2) {
    window_size_ = blob[0];
    modulus_ = blob[1];
  }
  windows_.clear();
}

void ArqRfu::on_execute(Op op) {
  stage_ = 0;
  const u16 cid = static_cast<u16>(args_.at(0));
  auto& w = windows_[cid];
  switch (op) {
    case Op::ArqTag: {
      status_addr_ = args_.at(1);
      const u32 in_flight = (w.next_bsn + modulus_ - w.window_start) % modulus_;
      if (in_flight >= window_size_) {
        status_word_ = 0xFFFFFFFFu;  // Window full.
      } else {
        status_word_ = w.next_bsn;
        w.next_bsn = (w.next_bsn + 1) % modulus_;
      }
      break;
    }
    case Op::ArqFeedback: {
      const u32 cumulative = args_.at(1);
      status_addr_ = args_.at(2);
      // Slide window_start forward to `cumulative` (mod modulus), bounded by
      // the in-flight range.
      u32 acked = 0;
      while (w.window_start != w.next_bsn && w.window_start != cumulative % modulus_) {
        w.window_start = (w.window_start + 1) % modulus_;
        ++acked;
      }
      if (w.window_start == cumulative % modulus_) {
        // Cumulative BSN itself is the next expected; nothing more to do.
      }
      status_word_ = acked;
      break;
    }
    default:
      assert(false && "ArqRfu: unknown op");
  }
  q_stall(4);  // Window bookkeeping latency.
}

bool ArqRfu::work_step() {
  if (stage_ == 0) {
    if (!io_step()) return false;
    stage_ = 1;
  }
  if (!bus_granted() || !bus_free()) return false;
  bus_write(status_addr_, status_word_);
  return true;
}


void ArqRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void ArqRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
