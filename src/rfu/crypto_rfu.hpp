// Crypto RFU — the encryption engine shared by the three protocol modes
// (thesis §2.3.2.1 #17): RC4 (WiFi WEP), AES-128 CTR (UWB and 802.11i),
// DES-CBC (WiMAX). It is a Memory-Access RFU: switching cipher requires
// streaming the key material / schedule from the reconfiguration memory,
// which is what makes its reconfiguration latency non-trivial and worth
// overlapping with MAC work (§3.6.1).
#pragma once

#include <memory>

#include "crypto/aes128.hpp"
#include "crypto/des.hpp"
#include "crypto/rc4.hpp"
#include "rfu/streaming.hpp"

namespace drmp::rfu {

class CryptoRfu final : public StreamingRfu {
 public:
  explicit CryptoRfu(Env env)
      : StreamingRfu(kCryptoRfu, "crypto", ReconfigMech::MemoryAccess, env) {}

  u8 nstates() const override { return 3; }

  /// Builds the configuration blob for a cipher state: word 0 = key byte
  /// count, then the key bytes, padded with schedule words so the MA
  /// reconfiguration cost reflects the real key-schedule size.
  static std::vector<Word> make_config_blob(u8 state, std::span<const u8> key);

  /// Per-word compute stall cycles of each cipher state (coarse-grained
  /// datapath throughput model).
  static Cycle stall_per_word(u8 state);

 protected:
  // Ops: Encrypt*/Decrypt* [src_page, dst_page, nonce_lo, nonce_hi].
  void on_execute(Op op) override;
  bool work_step() override;
  void on_reconfigured(u8 new_state, const std::vector<Word>& blob) override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(decrypt_);
    ar.io(src_);
    ar.io(dst_);
    ar.io(nonce_lo_);
    ar.io(nonce_hi_);
    ar.io(key_);
  }

  void transform();

  int stage_ = 0;
  bool decrypt_ = false;
  u32 src_ = 0;
  u32 dst_ = 0;
  u32 nonce_lo_ = 0;
  u32 nonce_hi_ = 0;
  Bytes key_;
};

}  // namespace drmp::rfu
