#include "rfu/classifier_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

namespace drmp::rfu {

std::vector<Word> ClassifierRfu::make_config_blob(const std::vector<Rule>& rules) {
  std::vector<Word> blob;
  blob.push_back(static_cast<Word>(rules.size()));
  for (const Rule& r : rules) {
    blob.push_back(r.meta);
    blob.push_back(r.cid);
  }
  return blob;
}

void ClassifierRfu::on_reconfigured(u8 /*state*/, const std::vector<Word>& blob) {
  rules_.clear();
  if (blob.empty()) return;
  const u32 n = blob[0];
  for (u32 i = 0; i < n && 2 + 2 * i <= blob.size(); ++i) {
    rules_.push_back(Rule{blob[1 + 2 * i], static_cast<u16>(blob[2 + 2 * i])});
  }
}

void ClassifierRfu::on_execute(Op op) {
  assert(op == Op::Classify);
  (void)op;
  stage_ = 0;
  const u32 meta = args_.at(0);
  status_addr_ = args_.at(1);
  status_word_ = 0xFFFFFFFFu;
  for (const Rule& r : rules_) {
    if (r.meta == meta) {
      status_word_ = r.cid;
      break;
    }
  }
  // Associative-lookup latency grows with the rule table.
  q_stall(1 + static_cast<Cycle>(rules_.size() / 4));
}

bool ClassifierRfu::work_step() {
  if (stage_ == 0) {
    if (!io_step()) return false;
    stage_ = 1;
  }
  if (!bus_granted() || !bus_free()) return false;
  bus_write(status_addr_, status_word_);
  return true;
}


void ClassifierRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void ClassifierRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
