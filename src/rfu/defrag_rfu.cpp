#include "rfu/defrag_rfu.hpp"

#include "sim/checkpoint.hpp"

#include <cassert>

#include "hw/memory_map.hpp"

namespace drmp::rfu {

void DefragRfu::on_execute(Op op) {
  assert(op == Op::DefragAppendWifi || op == Op::DefragAppendUwb ||
         op == Op::DefragAppendWimax);
  (void)op;
  stage_ = 0;
  src_ = args_.at(0);
  dst_ = args_.at(1);
  reset_ = args_.at(2) != 0;
  q_read_words(dst_ + hw::kPageLenOffset, 1);
  q_read_page(src_);
}

bool DefragRfu::work_step() {
  switch (stage_) {
    case 0: {
      if (!io_step()) return false;
      dst_len_ = reset_ ? 0 : in_words_.at(0);
      assert(dst_len_ % 4 == 0 && "reassembly offset must be word-aligned");
      out_bytes_ = in_bytes_;  // Source fragment payload.
      q_patch_bytes(dst_, dst_len_);
      q_write_len(dst_, dst_len_ + static_cast<u32>(out_bytes_.size()));
      stage_ = 1;
      return false;
    }
    default:
      return io_step();
  }
}


void DefragRfu::save_extra(sim::snap::Writer& w) { persist(w); }
void DefragRfu::load_extra(sim::snap::Reader& r) { persist(r); }

}  // namespace drmp::rfu
