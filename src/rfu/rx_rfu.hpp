// Reception RFU — drains a completed frame from the mode's translational Rx
// buffer into the packet memory at architecture speed. The hard-wired FCS
// slave snoops every word; because the stream includes the frame's own
// trailing CRC-32, a good frame leaves the slave's register at the CRC-32
// residue constant, which the Rx RFU converts into the fcs_ok status flag
// (the "redundancy checked without the software being aware of it" path,
// thesis §3.5).
#pragma once

#include <array>

#include "phy/buffers.hpp"
#include "rfu/crc_rfus.hpp"
#include "rfu/streaming.hpp"

namespace drmp::rfu {

/// CRC-32 residue: Crc32::value() after processing data followed by its own
/// little-endian CRC-32.
inline constexpr u32 kCrc32Residue = 0x2144DF1Cu;

class RxRfu final : public StreamingRfu {
 public:
  explicit RxRfu(Env env) : StreamingRfu(kRxRfu, "rx", ReconfigMech::ContextSwitch, env) {}

  void wire(FcsRfu* fcs_slave, std::array<phy::RxBuffer*, kNumModes> buffers) {
    fcs_ = fcs_slave;
    buffers_ = buffers;
  }

  /// Architecture cycle at which the most recently drained frame finished
  /// arriving (SIFS reference for the ACK generator).
  Cycle last_rx_end() const noexcept { return last_rx_end_; }
  u64 frames_drained() const noexcept { return frames_; }

 protected:
  // Ops: RxDrain{Wifi,Uwb,Wimax} [dst_page, mode_idx, opts, status_addr]
  //   opts bit0: check the trailing FCS (off for FCS-less frames such as the
  //   UWB Imm-ACK; the Event Handler knows from the frame length).
  void on_execute(Op op) override;
  bool work_step() override;

  void save_extra(sim::snap::Writer& w) override;
  void load_extra(sim::snap::Reader& r) override;

 private:
  template <class Ar>
  void persist(Ar& ar) {
    persist_streaming(ar);
    ar.io(stage_);
    ar.io(dst_);
    ar.io(mode_idx_);
    ar.io(check_fcs_);
    ar.io(status_addr_);
    ar.io(len_);
    ar.io(widx_);
    ar.io(nwords_);
    ar.io(last_rx_end_);
    ar.io(frames_);
  }

  int stage_ = 0;
  u32 dst_ = 0;
  u32 mode_idx_ = 0;
  bool check_fcs_ = false;
  u32 status_addr_ = 0;
  u32 len_ = 0;
  u32 widx_ = 0;
  u32 nwords_ = 0;
  Cycle last_rx_end_ = 0;
  u64 frames_ = 0;

  FcsRfu* fcs_ = nullptr;
  std::array<phy::RxBuffer*, kNumModes> buffers_{};
};

}  // namespace drmp::rfu
