#include "sim/multi_scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <thread>

namespace drmp::sim {

std::size_t MultiScheduler::add(Scheduler& sched, DonePredicate done) {
  lanes_.push_back(Lane{&sched, std::move(done)});
  return lanes_.size() - 1;
}

namespace {

/// Per-round shared state for the persistent worker pool. Workers park on
/// `start` between rounds; the calling thread publishes chunk/active before
/// releasing them and evaluates predicates alone after `end`.
struct RoundState {
  std::atomic<std::size_t> next{0};
  Cycle chunk = 0;
  bool stop = false;
  const std::vector<std::size_t>* active = nullptr;
};

}  // namespace

MultiScheduler::RunResult MultiScheduler::run(Cycle max_cycles, Cycle stride,
                                              unsigned workers) {
  if (stride == 0) stride = 1;
  RunResult res;

  // A lane can be born finished (empty workload) — honour that before the
  // first stride so it never ticks at all.
  std::vector<std::size_t> active;
  active.reserve(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    if (!lane.finished && lane.done && lane.done()) lane.finished = true;
    if (!lane.finished) active.push_back(i);
  }

  const unsigned nthreads = static_cast<unsigned>(std::max<std::size_t>(
      1, std::min<std::size_t>(std::max(1u, workers), active.size())));

  RoundState round;
  round.active = &active;
  // Cycles a quiescent lane owes because its rounds were skipped; replayed
  // in one batched call when the lane's next_wake falls due (or at exit).
  std::vector<Cycle> deferred(lanes_.size(), 0);
  const auto run_lane = [&](std::size_t idx) {
    Lane& lane = lanes_[idx];
    const Cycle want = round.chunk + deferred[idx];
    // next_wake() is exact between rounds (nothing mutates a lane outside
    // its own run), so a lane with no possible tick before the round target
    // can skip the dispatch entirely.
    if (lane.sched->next_wake() >= lane.sched->now() + want) {
      deferred[idx] = want;
      // Lane-stall profile: each lane only ever writes its own slot, so
      // worker threads never contend here.
      ++lane.rounds_skipped;
      lane.stall_cycles += round.chunk;
      return;
    }
    deferred[idx] = 0;
    lane.sched->run_cycles_batched(want);
    lane.cycles_run += want;
  };
  const auto flush_lane = [&](std::size_t idx) {
    if (deferred[idx] == 0) return;
    lanes_[idx].sched->run_cycles_batched(deferred[idx]);
    lanes_[idx].cycles_run += deferred[idx];
    deferred[idx] = 0;
  };
  const auto drain_queue = [&] {
    for (;;) {
      const std::size_t k = round.next.fetch_add(1, std::memory_order_relaxed);
      if (k >= round.active->size()) break;
      run_lane((*round.active)[k]);
    }
  };

  // Persistent pool: workers are spawned once and parked on a barrier
  // between rounds, so per-round cost is a wakeup, not a thread launch.
  std::barrier<> start(nthreads), end(nthreads);
  std::vector<std::thread> pool;
  pool.reserve(nthreads > 0 ? nthreads - 1 : 0);
  for (unsigned t = 1; t < nthreads; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        start.arrive_and_wait();
        if (round.stop) break;
        drain_queue();
        end.arrive_and_wait();
      }
    });
  }

  Cycle edge_next = edge_every_;
  while (res.cycles < max_cycles && !active.empty()) {
    round.chunk = std::min<Cycle>(stride, max_cycles - res.cycles);
    round.next.store(0, std::memory_order_relaxed);
    if (pool.empty()) {
      for (std::size_t idx : active) run_lane(idx);
    } else {
      start.arrive_and_wait();
      drain_queue();
      end.arrive_and_wait();
    }
    res.cycles += round.chunk;
    ++res.rounds;
    // Retire lanes whose predicate fired this stride (calling thread only —
    // workers are parked on the barrier here). A skipped lane's predicate
    // cannot have changed (its ticks were provably no-ops), but evaluating
    // it is pure, so the retire decision matches the dispatch-every-round
    // behaviour exactly. A lane can only finish in a round it actually ran
    // — the defensive flush keeps its clock aligned regardless.
    std::size_t kept = 0;
    for (std::size_t idx : active) {
      Lane& lane = lanes_[idx];
      if (lane.done && lane.done()) {
        flush_lane(idx);
        lane.finished = true;
      } else {
        active[kept++] = idx;
      }
    }
    active.resize(kept);
    // Round-edge exchange (workers still parked): couplers deliver the
    // events this round generated. Retired lanes' components may still be
    // mutated here — their counters must keep absorbing cross-lane effects
    // scheduled past the stop edge so collection-time statistics match a
    // coupled reference that stopped at the same edge.
    if (round_hook_) round_hook_();
    // Checkpoint edge: flush deferred lanes so every lane clock sits exactly
    // on this round edge, then hand control to the hook. Gated on the due
    // multiple — not every round — so round skipping keeps its effect
    // between checkpoints.
    if (edge_hook_ && res.cycles >= edge_next) {
      for (std::size_t idx : active) flush_lane(idx);
      edge_hook_(res.cycles);
      edge_next = (res.cycles / edge_every_ + 1) * edge_every_;
    }
  }

  // Bring skipped-but-unfinished lanes up to the lockstep clock, exactly as
  // if they had been dispatched every round.
  for (std::size_t idx : active) flush_lane(idx);

  if (!pool.empty()) {
    round.stop = true;
    start.arrive_and_wait();
    for (std::thread& t : pool) t.join();
  }

  res.all_finished = true;
  for (const Lane& lane : lanes_) {
    if (lane.finished) ++res.lanes_finished;
    if (lane.done && !lane.finished) res.all_finished = false;
  }
  return res;
}

}  // namespace drmp::sim
