// Statistics collectors backing the paper's evaluation artefacts:
//   * BusyCounter        -> Tables 5.1 / 5.2 (busy time of entities)
//   * StateOccupancy     -> Fig. 5.12 (state occupation in the task handler)
//   * LatencyStats       -> Figs. 5.8-5.10 (per-packet timing / constraints)
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace drmp::sim {

/// Counts cycles during which an entity reports itself busy.
class BusyCounter {
 public:
  void sample(bool busy) noexcept {
    ++total_;
    if (busy) ++busy_;
  }
  /// Bulk form: n consecutive cycles of one constant state. Equivalent to n
  /// sample(busy) calls — the quiescence skip path accounts idle (or frozen-
  /// busy) stretches through this without touching the per-cycle totals.
  void sample_n(bool busy, Cycle n) noexcept {
    total_ += n;
    if (busy) busy_ += n;
  }
  Cycle busy_cycles() const noexcept { return busy_; }
  Cycle total_cycles() const noexcept { return total_; }
  double busy_fraction() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(busy_) / static_cast<double>(total_);
  }
  void reset() noexcept { busy_ = total_ = 0; }

  /// Checkpoint support (sim/checkpoint.hpp).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(busy_);
    ar.io(total_);
  }

 private:
  Cycle busy_ = 0;
  Cycle total_ = 0;
};

/// Per-state cycle histogram for a finite-state controller.
class StateOccupancy {
 public:
  void sample(int state) { ++cycles_[state]; }
  /// Bulk form: n consecutive cycles in one state (quiescence skip path).
  void sample_n(int state, Cycle n) { cycles_[state] += n; }
  Cycle cycles_in(int state) const {
    auto it = cycles_.find(state);
    return it == cycles_.end() ? 0 : it->second;
  }
  Cycle total() const {
    Cycle t = 0;
    for (const auto& [s, c] : cycles_) t += c;
    return t;
  }
  const std::map<int, Cycle>& table() const noexcept { return cycles_; }
  void reset() { cycles_.clear(); }

  /// Checkpoint support (sim/checkpoint.hpp).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(cycles_);
  }

 private:
  std::map<int, Cycle> cycles_;
};

/// Simple scalar series with summary statistics (latencies, slacks).
class LatencyStats {
 public:
  void add(double v) { values_.push_back(v); }
  std::size_t count() const noexcept { return values_.size(); }
  double min() const { return values_.empty() ? 0 : *std::min_element(values_.begin(), values_.end()); }
  double max() const { return values_.empty() ? 0 : *std::max_element(values_.begin(), values_.end()); }
  double mean() const {
    if (values_.empty()) return 0;
    double s = 0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }
  double percentile(double p) const {
    if (values_.empty()) return 0;
    std::vector<double> v = values_;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
    return v[idx];
  }
  const std::vector<double>& values() const noexcept { return values_; }
  void reset() { values_.clear(); }

 private:
  std::vector<double> values_;
};

/// Order-sensitive FNV-1a accumulator over counter streams. The scenario
/// engine folds every per-device counter into one of these, so "same seed =>
/// byte-identical aggregate stats" collapses to a single u64 comparison.
class Digest {
 public:
  Digest() = default;
  /// Resumes a chain from a previously observed value() — the hierarchical
  /// fold path (FleetStats::fold_retired) keeps a running digest this way.
  explicit Digest(u64 resumed) noexcept : h_(resumed) {}

  Digest& mix(u64 v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFF;
      h_ *= 0x100000001B3ull;
    }
    return *this;
  }
  u64 value() const noexcept { return h_; }

 private:
  u64 h_ = 0xCBF29CE484222325ull;
};

/// Registry of named busy counters; entities register themselves so bench
/// binaries can print the whole Table 5.1/5.2 row set generically.
class StatsRegistry {
 public:
  BusyCounter& busy(const std::string& name) { return busy_[name]; }
  StateOccupancy& occupancy(const std::string& name) { return occ_[name]; }
  const std::map<std::string, BusyCounter>& all_busy() const noexcept { return busy_; }
  const std::map<std::string, StateOccupancy>& all_occupancy() const noexcept { return occ_; }
  void reset() {
    for (auto& [k, v] : busy_) v.reset();
    for (auto& [k, v] : occ_) v.reset();
  }

  /// Checkpoint support (sim/checkpoint.hpp). Components cache references
  /// into the map nodes (e.g. Rfu::busy_stat_), and many register lazily on
  /// first use — so a snapshot of a run-in device carries keys a freshly
  /// built assembly has not looked up yet. Loading restores values in place
  /// where the key already exists and inserts the rest; std::map nodes are
  /// stable, so existing cached references survive and later lazy lookups
  /// land on the restored entry. Which keys belong to which scenario is the
  /// engine fingerprint's job, not this registry's.
  template <class Ar>
  void persist(Ar& ar) {
    persist_in_place(ar, busy_);
    persist_in_place(ar, occ_);
  }

 private:
  template <class Ar, class M>
  static void persist_in_place(Ar& ar, M& m) {
    u64 n = m.size();
    ar.io(n);
    if constexpr (Ar::kLoading) {
      for (u64 i = 0; i < n; ++i) {
        std::string key;
        ar.io(key);
        ar.io(m[key]);
      }
    } else {
      for (auto& [k, v] : m) {
        std::string key = k;
        ar.io(key);
        ar.io(v);
      }
    }
  }
  std::map<std::string, BusyCounter> busy_;
  std::map<std::string, StateOccupancy> occ_;
};

}  // namespace drmp::sim
