#include "sim/clock.hpp"

// TimeBase and DerivedClock are header-only; this TU anchors the component in
// the build so link errors surface immediately if the header breaks.
namespace drmp::sim {
namespace {
[[maybe_unused]] const TimeBase kAnchor{200e6};
}
}  // namespace drmp::sim
