// Cycle-stepped simulation scheduler with quiescence-aware batching.
//
// The DRMP prototype was modelled in Simulink at "cycle-approximate"
// abstraction (thesis Ch. 5). This kernel reproduces that abstraction: every
// registered component exposes tick(), invoked once per architecture-clock
// cycle in a fixed deterministic order. Components communicate through plain
// member state sampled at tick boundaries; the fixed tick order replaces
// Simulink's dataflow ordering.
//
// Tick order is organised in *stages*: all components of a lower stage tick
// before any component of a higher stage, and within a stage registration
// order is preserved (stable sort). Every add() defaults to kStageDefault, so
// a scheduler built without explicit stages ticks in exact registration order
// — identical to the original single-vector kernel. Stages let fleet
// assemblers (scenario engine, multi-device testbenches) express "media
// before devices before observers" without depending on construction order.
//
// Two execution paths advance the clock:
//   * run_cycles / run_until — the legacy per-cycle path; ticks every
//     component every cycle, checks for new registrations every cycle and
//     evaluates run_until's predicate every cycle.
//   * run_cycles_batched — the fleet hot path: the component list is frozen
//     into one contiguous stage-ordered array at entry, and components that
//     declare themselves quiescent are *not ticked* until their declared
//     bound expires or an external input wakes them. Skipped ticks are
//     bulk-accounted through Clockable::skip_idle, so every counter and
//     statistic ends up cycle-for-cycle identical to run_cycles — including
//     now() as observed from inside a tick — provided no component is
//     registered mid-run (components are only ever registered during
//     construction in this code base).
//
// ---- The quiescence contract ----
//
// MAC workloads are idle-dominated: the paper's power argument (clock
// gating, PSO, Fig. 5.12 state occupation) rests on components spending most
// cycles quiescent. The batched path exploits the same property. A component
// may override:
//
//   * quiescent_for() — a conservative bound Q: "my next Q tick() calls
//     would be no-ops (absent external input); you may replace them with one
//     skip_idle(Q)". 0 means "tick me next cycle"; kIdleForever means
//     "skippable until woken". The scheduler calls it only at well-defined
//     points — immediately after the component's own tick(), or at a run
//     boundary with the component fully caught up — so implementations may
//     assume their internal clocks equal the index of their next tick.
//     Under-estimating Q is always safe (the component wakes, ticks once,
//     and may sleep again); over-estimating breaks bit-identity.
//   * skip_idle(n) — bulk-account n skipped ticks: advance internal cycle
//     counters and fold n samples into busy/occupancy statistics. After
//     skip_idle(n) the component must be in exactly the state n no-op
//     tick() calls would have produced.
//   * global_skip_only() — return true when the component's externally
//     visible state is time-derived (media: now(), cca_idle_for() advance
//     every cycle and are polled by other components). Such components are
//     ticked every cycle while anything else is awake and skipped only
//     across globally-quiescent gaps, where no observer can run.
//
// Wake invalidation: a quiescence bound is conditional on "no external
// input". Every path that delivers input to a potentially-sleeping component
// (bus trigger push, interrupt/host-request/timer arm, medium begin_tx and
// frame delivery, Tx/Rx buffer pushes, IRC submissions, doorbell writes)
// must call wake_self() on the target before mutating it. The scheduler then
// catches the component up (bulk-accounting the cycles it slept) and re-
// inserts it into the active set — in the *current* cycle when its tick slot
// has not yet passed this cycle, from the next cycle otherwise, which is
// exactly when the legacy path would first observe the input. skip_idle
// implementations must not wake other components.
//
// Globally-quiescent gaps: when every component is quiescent, the scheduler
// fast-forwards now_ to the earliest wake bound in one step (the wake-wheel
// is a min-heap of sleeping components' bounds), bulk-accounting the gap
// into every always-ticked component immediately so no state is ever stale
// at a cycle where anything runs.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/clock.hpp"

namespace drmp::sim {

class Scheduler;

namespace snap {
class Writer;
class Reader;
}  // namespace snap

/// Sleep-bound helper for components gated on a clock they read one ahead:
/// media lead the cycle, so a tick at cycle u reads a medium clock of u+1,
/// and the first tick observing `reading` is reading-1. Returns the count
/// of skippable ticks strictly before that tick, given the caller's next
/// tick index (== its reference clock at both contract evaluation points).
/// Single-sourcing the +2/-1 conversion matters: an off-by-one over-
/// estimate at any call site silently breaks bit-identity.
constexpr Cycle ticks_until_reading(Cycle reading, Cycle next_tick) noexcept {
  return reading >= next_tick + 2 ? reading - 1 - next_tick : 0;
}

/// Anything driven by the architecture clock.
class Clockable {
 public:
  virtual ~Clockable() = default;
  virtual void tick() = 0;

  /// Sentinel bound: quiescent until externally woken.
  static constexpr Cycle kIdleForever = ~Cycle{0};

  /// Conservative count of upcoming tick() calls that are no-ops (see the
  /// header comment). The default — never quiescent — is always correct.
  virtual Cycle quiescent_for() const { return 0; }

  /// Bulk-accounts `n` skipped ticks. Must be overridden (together with
  /// quiescent_for) by any component that can report a non-zero bound.
  virtual void skip_idle(Cycle n) { (void)n; }

  /// True when other components sample time-derived state from this one
  /// (see the header comment): tick every cycle, skip only in global gaps.
  virtual bool global_skip_only() const { return false; }

  /// Invalidates this component's quiescence bound: external input arrived.
  /// Safe to call at any time (no-op when awake, unregistered, or outside a
  /// batched run). Defined in scheduler.cpp.
  void wake_self() noexcept;

 private:
  friend class Scheduler;
  Scheduler* wake_sched_ = nullptr;  ///< Owning scheduler (set by freeze()).
  u32 wake_index_ = 0;               ///< Position in the frozen stage array.
};

/// Execution-domain introspection callbacks. sim/ stays ignorant of the
/// observability layer (src/obs/ may include sim/, never the reverse); the
/// flight recorder attaches through this interface to record skip spans and
/// fast-forwards. Callbacks fire only on the batched idle-skip path, on the
/// thread running the scheduler, and must not mutate simulation state.
class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;
  /// `name`'s skipped stretch [from, from+len) was settled in bulk.
  virtual void on_skip_span(std::string_view name, Cycle from, Cycle len) = 0;
  /// A globally-quiescent gap [from, from+len) was crossed in one jump.
  virtual void on_fast_forward(Cycle from, Cycle len) = 0;
};

/// Always-on profile of a scheduler's batched execution (bench surface).
struct SchedulerProfile {
  struct Stage {
    int stage = 0;
    u64 executed = 0;  ///< Component-ticks run by components of this stage.
    u64 skipped = 0;   ///< Component-ticks replaced by skip_idle.
  };
  u64 ticks_executed = 0;
  u64 ticks_skipped = 0;
  Cycle ff_cycles = 0;          ///< Cycles crossed by fast-forward jumps.
  u64 ff_events = 0;            ///< Number of fast-forward jumps.
  u64 wheel_depth_max = 0;      ///< Wake-wheel high-watermark (live + stale).
  u64 wheel_cascades = 0;       ///< Timing-wheel buckets re-hashed downward.
  u64 wheel_purges = 0;         ///< Stale-majority lazy-deletion sweeps.
  std::array<u64, 65> ff_gap_log2{};  ///< Jump lengths by bit width.
  std::vector<Stage> stages;          ///< Sorted by stage id.
};

/// Flat membership bitmap over the frozen component array: O(1) insert and
/// erase, cache-linear iteration in frozen (stage) order. Replaces the
/// std::set the active set grew up as — at fleet scale the per-cycle loop
/// walks one cached word per 64 components instead of chasing red-black
/// tree nodes.
class ActiveSet {
 public:
  void reset(std::size_t n) {
    words_.assign((n + 63) / 64, 0);
    count_ = 0;
  }
  void insert(u32 i) noexcept {
    u64& w = words_[i >> 6];
    const u64 m = u64{1} << (i & 63);
    count_ += static_cast<std::size_t>((w & m) == 0);
    w |= m;
  }
  void erase(u32 i) noexcept {
    u64& w = words_[i >> 6];
    const u64 m = u64{1} << (i & 63);
    count_ -= static_cast<std::size_t>((w & m) != 0);
    w &= ~m;
  }
  bool contains(u32 i) const noexcept {
    return (words_[i >> 6] >> (i & 63) & 1) != 0;
  }
  std::size_t size() const noexcept { return count_; }
  std::size_t word_count() const noexcept { return words_.size(); }
  u64 word(std::size_t k) const noexcept { return words_[k]; }

 private:
  std::vector<u64> words_;
  std::size_t count_ = 0;
};

/// Bucketed hierarchical timing wheel for sleeping components' wake bounds:
/// O(1) push, O(occupied) advance, with far-future bounds parked on a flat
/// overflow level. Replaces the binary-heap wake wheel, whose log-depth
/// sift-downs and one-at-a-time stale pops dominated the scheduler loop on
/// wake-heavy cells.
///
/// Layout: kLevels levels of 64 slots; a slot at level l spans 2^(6l)
/// cycles, so the wheel covers kSpan = 2^(6*kLevels) cycles past `base_`.
/// Entries hash by the absolute wake time's level-l digit; a per-level
/// occupancy word makes "earliest occupied slot" one bit-scan. advance()
/// walks base_ through successive next_bound() stops, cascading each
/// higher-level bucket it enters strictly downward until due entries drain
/// out of level 0. Deletion is lazy: the scheduler's generation check
/// rejects stale entries at drain time, and purge() sweeps them out when
/// they become the majority.
///
/// next_bound() is a *lower* bound on the earliest stored wake time — exact
/// at level 0, a bucket floor above — which is safe for fast-forwarding
/// because skip chunking is additive by the quiescence contract: a gap
/// crossed in several hops lands on the same cycle with the same state.
class TimingWheel {
 public:
  struct Entry {
    Cycle wake_at;
    u32 index;
    u32 gen;
  };

  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr std::size_t kSlots = 64;
  static constexpr Cycle kSpan = Cycle{1} << (kLevels * kSlotBits);
  static constexpr Cycle kNever = ~Cycle{0};

  /// Drops every entry and rebases the wheel (O(occupied buckets); bucket
  /// capacity is retained, so steady-state re-entry allocates nothing).
  void reset(Cycle base) {
    for (int l = 0; l < kLevels; ++l) {
      u64 bits = occ_[l];
      while (bits != 0) {
        buckets_[l][static_cast<std::size_t>(std::countr_zero(bits))].clear();
        bits &= bits - 1;
      }
      occ_[l] = 0;
    }
    overflow_.clear();
    overflow_min_ = kNever;
    base_ = base;
    size_ = 0;
  }

  /// Stores a bound. Requires wake_at > the base advance() last settled on
  /// (the scheduler always pushes strictly-future bounds).
  void push(Cycle wake_at, u32 index, u32 gen) {
    ++size_;
    place(Entry{wake_at, index, gen});
  }

  /// Moves the wheel to `now`, invoking `due` on every entry whose wake
  /// time has arrived (in bucket order; the scheduler's gen check makes
  /// drain order irrelevant). Requires now >= the previous advance point.
  template <typename F>
  void advance(Cycle now, F&& due) {
    while (base_ < now) {
      const Cycle nb = next_bound();
      if (nb > now) {
        base_ = now;
        return;
      }
      base_ = nb;
      service(due);
    }
  }

  /// Lower bound (> the current base) on the earliest stored wake time;
  /// kNever when empty. Valid after advance() caught the wheel up to now.
  Cycle next_bound() const noexcept {
    Cycle nb = overflow_min_;
    if (occ_[0] != 0) {
      const u64 c = base_ & 63;
      const u64 hi = occ_[0] & ~((u64{2} << c) - 1);
      const Cycle frame0 = base_ & ~Cycle{63};
      nb = std::min(nb, hi != 0 ? frame0 + static_cast<Cycle>(std::countr_zero(hi))
                                : frame0 + 64 +
                                      static_cast<Cycle>(std::countr_zero(occ_[0])));
    }
    for (int l = 1; l < kLevels; ++l) {
      if (occ_[l] == 0) continue;
      const int shift = kSlotBits * l;
      const Cycle width = Cycle{1} << shift;
      const Cycle frame = width << kSlotBits;
      const Cycle frame_base = base_ & ~(frame - 1);
      const u64 c = (base_ >> shift) & 63;
      const u64 hi = occ_[l] & ~((u64{2} << c) - 1);
      nb = std::min(nb, hi != 0
                            ? frame_base + width * static_cast<Cycle>(
                                               std::countr_zero(hi))
                            : frame_base + frame +
                                  width * static_cast<Cycle>(
                                              std::countr_zero(occ_[l])));
    }
    return nb;
  }

  /// Filters out entries `keep` rejects (the scheduler's stale predicate).
  template <typename P>
  void purge(P&& keep) {
    for (int l = 0; l < kLevels; ++l) {
      u64 bits = occ_[l];
      while (bits != 0) {
        const auto s = static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        filter(buckets_[l][s], keep);
        if (buckets_[l][s].empty()) occ_[l] &= ~(u64{1} << s);
      }
    }
    filter(overflow_, keep);
    overflow_min_ = kNever;
    for (const Entry& e : overflow_) overflow_min_ = std::min(overflow_min_, e.wake_at);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  u64 cascades() const noexcept { return cascades_; }

 private:
  /// Requires e.wake_at > base_ (due entries are drained before placement).
  void place(const Entry& e) {
    const Cycle delta = e.wake_at - base_;
    if (delta >= kSpan) {
      overflow_.push_back(e);
      overflow_min_ = std::min(overflow_min_, e.wake_at);
      return;
    }
    const int l = (std::bit_width(delta) - 1) / kSlotBits;
    const auto s =
        static_cast<std::size_t>((e.wake_at >> (kSlotBits * l)) & 63);
    buckets_[static_cast<std::size_t>(l)][s].push_back(e);
    occ_[static_cast<std::size_t>(l)] |= u64{1} << s;
  }

  /// Drains / cascades everything anchored at base_ (called at each
  /// next_bound() stop): refills overflow entries inside the horizon,
  /// cascades every higher-level bucket whose window opens here strictly
  /// downward, then hands the level-0 bucket — whose entries are all due
  /// exactly now — to `due`.
  template <typename F>
  void service(F&& due) {
    if (!overflow_.empty() && overflow_min_ - base_ < kSpan) refill(due);
    for (int l = kLevels - 1; l >= 1; --l) {
      const int shift = kSlotBits * l;
      if ((base_ & ((Cycle{1} << shift) - 1)) != 0) continue;
      const auto s = static_cast<std::size_t>((base_ >> shift) & 63);
      auto& b = buckets_[static_cast<std::size_t>(l)][s];
      if (b.empty()) continue;
      occ_[static_cast<std::size_t>(l)] &= ~(u64{1} << s);
      scratch_.clear();
      scratch_.insert(scratch_.end(), b.begin(), b.end());
      b.clear();
      ++cascades_;
      for (const Entry& e : scratch_) {
        if (e.wake_at <= base_) {
          --size_;
          due(e);
        } else {
          place(e);
        }
      }
    }
    const auto s0 = static_cast<std::size_t>(base_ & 63);
    if ((occ_[0] >> s0 & 1) != 0) {
      auto& b = buckets_[0][s0];
      occ_[0] &= ~(u64{1} << s0);
      scratch_.clear();
      scratch_.insert(scratch_.end(), b.begin(), b.end());
      b.clear();
      for (const Entry& e : scratch_) {
        --size_;
        due(e);  // Level-0 residents here are due at exactly base_.
      }
    }
  }

  template <typename F>
  void refill(F&& due) {
    Cycle new_min = kNever;
    std::size_t w = 0;
    for (const Entry& e : overflow_) {
      if (e.wake_at <= base_) {
        --size_;
        due(e);
      } else if (e.wake_at - base_ < kSpan) {
        place(e);
      } else {
        new_min = std::min(new_min, e.wake_at);
        overflow_[w++] = e;
      }
    }
    overflow_.resize(w);
    overflow_min_ = new_min;
  }

  template <typename P>
  void filter(std::vector<Entry>& v, P&& keep) {
    std::size_t w = 0;
    for (const Entry& e : v) {
      if (keep(e)) v[w++] = e;
    }
    size_ -= v.size() - w;
    v.resize(w);
  }

  std::array<std::array<std::vector<Entry>, kSlots>, kLevels> buckets_{};
  std::array<u64, kLevels> occ_{};
  std::vector<Entry> overflow_;  ///< wake_at >= base_ + kSpan, unsorted.
  Cycle overflow_min_ = kNever;
  std::vector<Entry> scratch_;  ///< Cascade staging (capacity retained).
  Cycle base_ = 0;
  std::size_t size_ = 0;
  u64 cascades_ = 0;
};

class Scheduler {
 public:
  /// Stage of every add() that does not ask for one. Components that must
  /// tick before the default population (shared media) use a negative stage;
  /// pure observers (probes, traffic sinks) use a positive one.
  static constexpr int kStageDefault = 0;
  static constexpr int kStageMedium = -1;   ///< Shared media lead the cycle.
  static constexpr int kStageObserver = 1;  ///< Probes sample the completed cycle.

  explicit Scheduler(Hz arch_freq) : timebase_(arch_freq) {}

  /// Registers a component; tick order is (stage, registration order).
  void add(Clockable& c, std::string name, int stage = kStageDefault);

  /// Advances the simulation by n architecture cycles (legacy path).
  void run_cycles(Cycle n);

  /// Advances by n cycles over the frozen stage-ordered component array,
  /// skipping quiescent components (see the header comment). Produces the
  /// same state as run_cycles(n), cycle for cycle.
  void run_cycles_batched(Cycle n);

  /// Runs until `done()` returns true or `max_cycles` elapse (whichever is
  /// first). Returns true iff the predicate fired. The predicate is evaluated
  /// before every cycle.
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  /// Disables quiescence-aware skipping: run_cycles_batched ticks every
  /// component every cycle (the pre-quiescence hot path). The baseline the
  /// equivalence tests compare against. Toggling mid-run invalidates the
  /// published next_wake() hint — the bound was computed under the other
  /// policy — so it collapses to now(): always safe (a dispatched lane with
  /// nothing to do just fast-forwards), never stale.
  void set_idle_skip(bool enabled) noexcept {
    if (idle_skip_ != enabled) next_wake_ = now_;
    idle_skip_ = enabled;
  }
  bool idle_skip() const noexcept { return idle_skip_; }

  /// Earliest cycle at which any component might execute a real tick, as
  /// established at the end of the last batched run: now() when anything is
  /// active, kIdleForever when every component is quiescent indefinitely.
  /// Valid until a component is externally mutated; MultiScheduler uses it
  /// to skip lockstep rounds for fully-quiescent lanes.
  Cycle next_wake() const noexcept { return next_wake_; }

  Cycle now() const noexcept { return now_; }
  const TimeBase& timebase() const noexcept { return timebase_; }
  double now_us() const noexcept { return timebase_.cycles_to_us(now_); }

  std::size_t component_count() const noexcept { return entries_.size(); }
  /// Name / stage by registration index.
  const std::string& component_name(std::size_t i) const { return names_[i]; }
  int component_stage(std::size_t i) const { return entries_[i].stage; }

  // ---- Idle-skip instrumentation (bench/report surface) ----
  /// Component-ticks actually executed by batched runs.
  u64 ticks_executed() const noexcept { return ticks_executed_; }
  /// Component-ticks replaced by skip_idle bulk accounting.
  u64 ticks_skipped() const noexcept { return ticks_skipped_; }
  /// Cycles crossed by globally-quiescent fast-forward jumps.
  Cycle cycles_fast_forwarded() const noexcept { return ff_cycles_; }

  /// Aggregated per-stage execution profile (see SchedulerProfile). Cheap
  /// enough to keep always-on: the hot path pays one array increment per
  /// executed tick.
  SchedulerProfile profile() const;

  /// Attaches (or detaches, with nullptr) an execution-domain observer.
  void set_observer(SchedulerObserver* o) noexcept { observer_ = o; }

  // ---- Checkpoint (sim/checkpoint.hpp) ----
  /// Persists the clock and execution counters. Legal only between batched
  /// runs: the only simulation state a scheduler carries across
  /// run_cycles_batched calls is now_ — enter_batched rebuilds the whole
  /// quiescence apparatus (active set, wake wheel, per-component states)
  /// from component bounds at entry. load_state collapses next_wake() to
  /// now(), which is always safe and never stale (the set_idle_skip
  /// argument).
  void save_state(snap::Writer& w);
  void load_state(snap::Reader& r);

 private:
  void step();
  /// Rebuilds the contiguous stage-ordered execution array.
  void freeze();
  void run_cycles_batched_every_tick(Cycle n);
  void enter_batched();
  void exit_batched();
  /// Catches a sleeping component up and re-inserts it into the active set.
  void wake_component(u32 idx);
  friend class Clockable;

  struct Entry {
    Clockable* component;
    int stage;
  };

  /// Per-component quiescence state, parallel to batch_; live only inside
  /// run_cycles_batched.
  struct CompState {
    bool eager = false;    ///< global_skip_only(): tick unless global gap.
    bool sleeping = false;
    bool in_wheel = false;  ///< A live wheel entry exists for this sleep.
    u32 gen = 0;            ///< Invalidates stale wake-wheel entries.
    Cycle slept_from = 0;   ///< First skipped tick cycle.
  };

  /// Eagerly sweep the wheel when stale entries both exceed this floor and
  /// outnumber live ones — bounding wheel depth on wake-heavy workloads
  /// without paying a sweep for isolated early wakes.
  static constexpr std::size_t kPurgeMinStale = 64;

  static constexpr std::size_t kNoCursor = ~std::size_t{0};

  /// Drains due wheel entries at now_ and purges when stale entries
  /// dominate (the lazy-deletion leak fix).
  void drain_wheel();

  TimeBase timebase_;
  Cycle now_ = 0;
  std::vector<Entry> entries_;  ///< Registration order.
  std::vector<std::string> names_;
  std::vector<Clockable*> batch_;  ///< Stage-ordered, rebuilt when dirty.
  bool batch_dirty_ = false;

  bool idle_skip_ = true;
  bool in_batched_run_ = false;
  bool in_cycle_ = false;
  std::size_t cursor_ = kNoCursor;  ///< Frozen index currently ticking.
  std::vector<CompState> states_;
  ActiveSet active_;  ///< Awake components, iterated in frozen order.
  TimingWheel wheel_;
  std::size_t awake_lazy_ = 0;   ///< Awake components that are not eager.
  std::size_t wheel_stale_ = 0;  ///< Known-stale entries still in the wheel.
  Cycle next_wake_ = 0;

  u64 ticks_executed_ = 0;
  u64 ticks_skipped_ = 0;
  Cycle ff_cycles_ = 0;

  // ---- Profiling state (see SchedulerProfile) ----
  std::vector<std::string> frozen_names_;  ///< Name by frozen index.
  std::vector<int> stage_ids_;             ///< Sorted unique stages.
  std::vector<u32> stage_bucket_;          ///< Frozen index -> stage_ids_ slot.
  std::vector<u64> stage_exec_;            ///< Per-bucket executed ticks.
  std::vector<u64> stage_skip_;            ///< Per-bucket skipped ticks.
  /// Totals flushed across re-freezes (stage id -> {executed, skipped}).
  std::map<int, std::pair<u64, u64>> stage_totals_;
  u64 wheel_depth_max_ = 0;
  u64 wheel_purges_ = 0;
  u64 ff_events_ = 0;
  std::array<u64, 65> ff_gap_log2_{};
  SchedulerObserver* observer_ = nullptr;
};

}  // namespace drmp::sim
