// Cycle-stepped simulation scheduler.
//
// The DRMP prototype was modelled in Simulink at "cycle-approximate"
// abstraction (thesis Ch. 5). This kernel reproduces that abstraction: every
// registered component exposes tick(), invoked once per architecture-clock
// cycle in a fixed deterministic order. Components communicate through plain
// member state sampled at tick boundaries; the fixed tick order replaces
// Simulink's dataflow ordering.
//
// Tick order is organised in *stages*: all components of a lower stage tick
// before any component of a higher stage, and within a stage registration
// order is preserved (stable sort). Every add() defaults to kStageDefault, so
// a scheduler built without explicit stages ticks in exact registration order
// — identical to the original single-vector kernel. Stages let fleet
// assemblers (scenario engine, multi-device testbenches) express "media
// before devices before observers" without depending on construction order.
//
// Two execution paths advance the clock:
//   * run_cycles / run_until — the legacy per-cycle path; checks for new
//     registrations every cycle and evaluates run_until's predicate every
//     cycle.
//   * run_cycles_batched — the hot path for fleet simulation: the component
//     list is frozen into one contiguous stage-ordered array at entry and the
//     inner loop touches nothing but that array and the cycle counter.
//     Cycle-for-cycle identical to run_cycles — including now() as observed
//     from inside a tick — provided no component is registered mid-run
//     (components are only ever registered during construction in this code
//     base).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/clock.hpp"

namespace drmp::sim {

/// Anything driven by the architecture clock.
class Clockable {
 public:
  virtual ~Clockable() = default;
  virtual void tick() = 0;
};

class Scheduler {
 public:
  /// Stage of every add() that does not ask for one. Components that must
  /// tick before the default population (shared media) use a negative stage;
  /// pure observers (probes, traffic sinks) use a positive one.
  static constexpr int kStageDefault = 0;
  static constexpr int kStageMedium = -1;   ///< Shared media lead the cycle.
  static constexpr int kStageObserver = 1;  ///< Probes sample the completed cycle.

  explicit Scheduler(Hz arch_freq) : timebase_(arch_freq) {}

  /// Registers a component; tick order is (stage, registration order).
  void add(Clockable& c, std::string name, int stage = kStageDefault);

  /// Advances the simulation by n architecture cycles (legacy path).
  void run_cycles(Cycle n);

  /// Advances by n cycles over the frozen stage-ordered component array.
  /// Produces the same state as run_cycles(n), cycle for cycle.
  void run_cycles_batched(Cycle n);

  /// Runs until `done()` returns true or `max_cycles` elapse (whichever is
  /// first). Returns true iff the predicate fired. The predicate is evaluated
  /// before every cycle.
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  Cycle now() const noexcept { return now_; }
  const TimeBase& timebase() const noexcept { return timebase_; }
  double now_us() const noexcept { return timebase_.cycles_to_us(now_); }

  std::size_t component_count() const noexcept { return entries_.size(); }
  /// Name / stage by registration index.
  const std::string& component_name(std::size_t i) const { return names_[i]; }
  int component_stage(std::size_t i) const { return entries_[i].stage; }

 private:
  void step();
  /// Rebuilds the contiguous stage-ordered execution array.
  void freeze();

  struct Entry {
    Clockable* component;
    int stage;
  };

  TimeBase timebase_;
  Cycle now_ = 0;
  std::vector<Entry> entries_;  ///< Registration order.
  std::vector<std::string> names_;
  std::vector<Clockable*> batch_;  ///< Stage-ordered, rebuilt when dirty.
  bool batch_dirty_ = false;
};

}  // namespace drmp::sim
