// Cycle-stepped simulation scheduler.
//
// The DRMP prototype was modelled in Simulink at "cycle-approximate"
// abstraction (thesis Ch. 5). This kernel reproduces that abstraction: every
// registered component exposes tick(), invoked once per architecture-clock
// cycle in registration order. Components communicate through plain member
// state sampled at tick boundaries; a fixed deterministic tick order replaces
// Simulink's dataflow ordering.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/clock.hpp"

namespace drmp::sim {

/// Anything driven by the architecture clock.
class Clockable {
 public:
  virtual ~Clockable() = default;
  virtual void tick() = 0;
};

class Scheduler {
 public:
  explicit Scheduler(Hz arch_freq) : timebase_(arch_freq) {}

  /// Registers a component; tick order equals registration order.
  void add(Clockable& c, std::string name);

  /// Advances the simulation by n architecture cycles.
  void run_cycles(Cycle n);

  /// Runs until `done()` returns true or `max_cycles` elapse (whichever is
  /// first). Returns true iff the predicate fired.
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  Cycle now() const noexcept { return now_; }
  const TimeBase& timebase() const noexcept { return timebase_; }
  double now_us() const noexcept { return timebase_.cycles_to_us(now_); }

  std::size_t component_count() const noexcept { return components_.size(); }
  const std::string& component_name(std::size_t i) const { return names_[i]; }

 private:
  void step();

  TimeBase timebase_;
  Cycle now_ = 0;
  std::vector<Clockable*> components_;
  std::vector<std::string> names_;
};

}  // namespace drmp::sim
