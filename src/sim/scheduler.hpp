// Cycle-stepped simulation scheduler with quiescence-aware batching.
//
// The DRMP prototype was modelled in Simulink at "cycle-approximate"
// abstraction (thesis Ch. 5). This kernel reproduces that abstraction: every
// registered component exposes tick(), invoked once per architecture-clock
// cycle in a fixed deterministic order. Components communicate through plain
// member state sampled at tick boundaries; the fixed tick order replaces
// Simulink's dataflow ordering.
//
// Tick order is organised in *stages*: all components of a lower stage tick
// before any component of a higher stage, and within a stage registration
// order is preserved (stable sort). Every add() defaults to kStageDefault, so
// a scheduler built without explicit stages ticks in exact registration order
// — identical to the original single-vector kernel. Stages let fleet
// assemblers (scenario engine, multi-device testbenches) express "media
// before devices before observers" without depending on construction order.
//
// Two execution paths advance the clock:
//   * run_cycles / run_until — the legacy per-cycle path; ticks every
//     component every cycle, checks for new registrations every cycle and
//     evaluates run_until's predicate every cycle.
//   * run_cycles_batched — the fleet hot path: the component list is frozen
//     into one contiguous stage-ordered array at entry, and components that
//     declare themselves quiescent are *not ticked* until their declared
//     bound expires or an external input wakes them. Skipped ticks are
//     bulk-accounted through Clockable::skip_idle, so every counter and
//     statistic ends up cycle-for-cycle identical to run_cycles — including
//     now() as observed from inside a tick — provided no component is
//     registered mid-run (components are only ever registered during
//     construction in this code base).
//
// ---- The quiescence contract ----
//
// MAC workloads are idle-dominated: the paper's power argument (clock
// gating, PSO, Fig. 5.12 state occupation) rests on components spending most
// cycles quiescent. The batched path exploits the same property. A component
// may override:
//
//   * quiescent_for() — a conservative bound Q: "my next Q tick() calls
//     would be no-ops (absent external input); you may replace them with one
//     skip_idle(Q)". 0 means "tick me next cycle"; kIdleForever means
//     "skippable until woken". The scheduler calls it only at well-defined
//     points — immediately after the component's own tick(), or at a run
//     boundary with the component fully caught up — so implementations may
//     assume their internal clocks equal the index of their next tick.
//     Under-estimating Q is always safe (the component wakes, ticks once,
//     and may sleep again); over-estimating breaks bit-identity.
//   * skip_idle(n) — bulk-account n skipped ticks: advance internal cycle
//     counters and fold n samples into busy/occupancy statistics. After
//     skip_idle(n) the component must be in exactly the state n no-op
//     tick() calls would have produced.
//   * global_skip_only() — return true when the component's externally
//     visible state is time-derived (media: now(), cca_idle_for() advance
//     every cycle and are polled by other components). Such components are
//     ticked every cycle while anything else is awake and skipped only
//     across globally-quiescent gaps, where no observer can run.
//
// Wake invalidation: a quiescence bound is conditional on "no external
// input". Every path that delivers input to a potentially-sleeping component
// (bus trigger push, interrupt/host-request/timer arm, medium begin_tx and
// frame delivery, Tx/Rx buffer pushes, IRC submissions, doorbell writes)
// must call wake_self() on the target before mutating it. The scheduler then
// catches the component up (bulk-accounting the cycles it slept) and re-
// inserts it into the active set — in the *current* cycle when its tick slot
// has not yet passed this cycle, from the next cycle otherwise, which is
// exactly when the legacy path would first observe the input. skip_idle
// implementations must not wake other components.
//
// Globally-quiescent gaps: when every component is quiescent, the scheduler
// fast-forwards now_ to the earliest wake bound in one step (the wake-wheel
// is a min-heap of sleeping components' bounds), bulk-accounting the gap
// into every always-ticked component immediately so no state is ever stale
// at a cycle where anything runs.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "sim/clock.hpp"

namespace drmp::sim {

class Scheduler;

/// Sleep-bound helper for components gated on a clock they read one ahead:
/// media lead the cycle, so a tick at cycle u reads a medium clock of u+1,
/// and the first tick observing `reading` is reading-1. Returns the count
/// of skippable ticks strictly before that tick, given the caller's next
/// tick index (== its reference clock at both contract evaluation points).
/// Single-sourcing the +2/-1 conversion matters: an off-by-one over-
/// estimate at any call site silently breaks bit-identity.
constexpr Cycle ticks_until_reading(Cycle reading, Cycle next_tick) noexcept {
  return reading >= next_tick + 2 ? reading - 1 - next_tick : 0;
}

/// Anything driven by the architecture clock.
class Clockable {
 public:
  virtual ~Clockable() = default;
  virtual void tick() = 0;

  /// Sentinel bound: quiescent until externally woken.
  static constexpr Cycle kIdleForever = ~Cycle{0};

  /// Conservative count of upcoming tick() calls that are no-ops (see the
  /// header comment). The default — never quiescent — is always correct.
  virtual Cycle quiescent_for() const { return 0; }

  /// Bulk-accounts `n` skipped ticks. Must be overridden (together with
  /// quiescent_for) by any component that can report a non-zero bound.
  virtual void skip_idle(Cycle n) { (void)n; }

  /// True when other components sample time-derived state from this one
  /// (see the header comment): tick every cycle, skip only in global gaps.
  virtual bool global_skip_only() const { return false; }

  /// Invalidates this component's quiescence bound: external input arrived.
  /// Safe to call at any time (no-op when awake, unregistered, or outside a
  /// batched run). Defined in scheduler.cpp.
  void wake_self() noexcept;

 private:
  friend class Scheduler;
  Scheduler* wake_sched_ = nullptr;  ///< Owning scheduler (set by freeze()).
  u32 wake_index_ = 0;               ///< Position in the frozen stage array.
};

/// Execution-domain introspection callbacks. sim/ stays ignorant of the
/// observability layer (src/obs/ may include sim/, never the reverse); the
/// flight recorder attaches through this interface to record skip spans and
/// fast-forwards. Callbacks fire only on the batched idle-skip path, on the
/// thread running the scheduler, and must not mutate simulation state.
class SchedulerObserver {
 public:
  virtual ~SchedulerObserver() = default;
  /// `name`'s skipped stretch [from, from+len) was settled in bulk.
  virtual void on_skip_span(std::string_view name, Cycle from, Cycle len) = 0;
  /// A globally-quiescent gap [from, from+len) was crossed in one jump.
  virtual void on_fast_forward(Cycle from, Cycle len) = 0;
};

/// Always-on profile of a scheduler's batched execution (bench surface).
struct SchedulerProfile {
  struct Stage {
    int stage = 0;
    u64 executed = 0;  ///< Component-ticks run by components of this stage.
    u64 skipped = 0;   ///< Component-ticks replaced by skip_idle.
  };
  u64 ticks_executed = 0;
  u64 ticks_skipped = 0;
  Cycle ff_cycles = 0;          ///< Cycles crossed by fast-forward jumps.
  u64 ff_events = 0;            ///< Number of fast-forward jumps.
  u64 wheel_depth_max = 0;      ///< Wake-wheel high-watermark.
  std::array<u64, 65> ff_gap_log2{};  ///< Jump lengths by bit width.
  std::vector<Stage> stages;          ///< Sorted by stage id.
};

class Scheduler {
 public:
  /// Stage of every add() that does not ask for one. Components that must
  /// tick before the default population (shared media) use a negative stage;
  /// pure observers (probes, traffic sinks) use a positive one.
  static constexpr int kStageDefault = 0;
  static constexpr int kStageMedium = -1;   ///< Shared media lead the cycle.
  static constexpr int kStageObserver = 1;  ///< Probes sample the completed cycle.

  explicit Scheduler(Hz arch_freq) : timebase_(arch_freq) {}

  /// Registers a component; tick order is (stage, registration order).
  void add(Clockable& c, std::string name, int stage = kStageDefault);

  /// Advances the simulation by n architecture cycles (legacy path).
  void run_cycles(Cycle n);

  /// Advances by n cycles over the frozen stage-ordered component array,
  /// skipping quiescent components (see the header comment). Produces the
  /// same state as run_cycles(n), cycle for cycle.
  void run_cycles_batched(Cycle n);

  /// Runs until `done()` returns true or `max_cycles` elapse (whichever is
  /// first). Returns true iff the predicate fired. The predicate is evaluated
  /// before every cycle.
  bool run_until(const std::function<bool()>& done, Cycle max_cycles);

  /// Disables quiescence-aware skipping: run_cycles_batched ticks every
  /// component every cycle (the pre-quiescence hot path). The baseline the
  /// equivalence tests compare against. Toggling mid-run invalidates the
  /// published next_wake() hint — the bound was computed under the other
  /// policy — so it collapses to now(): always safe (a dispatched lane with
  /// nothing to do just fast-forwards), never stale.
  void set_idle_skip(bool enabled) noexcept {
    if (idle_skip_ != enabled) next_wake_ = now_;
    idle_skip_ = enabled;
  }
  bool idle_skip() const noexcept { return idle_skip_; }

  /// Earliest cycle at which any component might execute a real tick, as
  /// established at the end of the last batched run: now() when anything is
  /// active, kIdleForever when every component is quiescent indefinitely.
  /// Valid until a component is externally mutated; MultiScheduler uses it
  /// to skip lockstep rounds for fully-quiescent lanes.
  Cycle next_wake() const noexcept { return next_wake_; }

  Cycle now() const noexcept { return now_; }
  const TimeBase& timebase() const noexcept { return timebase_; }
  double now_us() const noexcept { return timebase_.cycles_to_us(now_); }

  std::size_t component_count() const noexcept { return entries_.size(); }
  /// Name / stage by registration index.
  const std::string& component_name(std::size_t i) const { return names_[i]; }
  int component_stage(std::size_t i) const { return entries_[i].stage; }

  // ---- Idle-skip instrumentation (bench/report surface) ----
  /// Component-ticks actually executed by batched runs.
  u64 ticks_executed() const noexcept { return ticks_executed_; }
  /// Component-ticks replaced by skip_idle bulk accounting.
  u64 ticks_skipped() const noexcept { return ticks_skipped_; }
  /// Cycles crossed by globally-quiescent fast-forward jumps.
  Cycle cycles_fast_forwarded() const noexcept { return ff_cycles_; }

  /// Aggregated per-stage execution profile (see SchedulerProfile). Cheap
  /// enough to keep always-on: the hot path pays one array increment per
  /// executed tick.
  SchedulerProfile profile() const;

  /// Attaches (or detaches, with nullptr) an execution-domain observer.
  void set_observer(SchedulerObserver* o) noexcept { observer_ = o; }

 private:
  void step();
  /// Rebuilds the contiguous stage-ordered execution array.
  void freeze();
  void run_cycles_batched_every_tick(Cycle n);
  void enter_batched();
  void exit_batched();
  /// Catches a sleeping component up and re-inserts it into the active set.
  void wake_component(u32 idx);
  friend class Clockable;

  struct Entry {
    Clockable* component;
    int stage;
  };

  /// Per-component quiescence state, parallel to batch_; live only inside
  /// run_cycles_batched.
  struct CompState {
    bool eager = false;    ///< global_skip_only(): tick unless global gap.
    bool sleeping = false;
    u32 gen = 0;           ///< Invalidates stale wake-wheel entries.
    Cycle slept_from = 0;  ///< First skipped tick cycle.
  };

  struct WheelEntry {
    Cycle wake_at;
    u32 index;
    u32 gen;
    bool operator>(const WheelEntry& o) const noexcept { return wake_at > o.wake_at; }
  };

  static constexpr std::size_t kNoCursor = ~std::size_t{0};

  TimeBase timebase_;
  Cycle now_ = 0;
  std::vector<Entry> entries_;  ///< Registration order.
  std::vector<std::string> names_;
  std::vector<Clockable*> batch_;  ///< Stage-ordered, rebuilt when dirty.
  bool batch_dirty_ = false;

  bool idle_skip_ = true;
  bool in_batched_run_ = false;
  bool in_cycle_ = false;
  std::size_t cursor_ = kNoCursor;  ///< Frozen index currently ticking.
  std::vector<CompState> states_;
  std::set<u32> active_;  ///< Awake components, iterated in frozen order.
  std::priority_queue<WheelEntry, std::vector<WheelEntry>, std::greater<>> wheel_;
  std::size_t awake_lazy_ = 0;  ///< Awake components that are not eager.
  Cycle next_wake_ = 0;

  u64 ticks_executed_ = 0;
  u64 ticks_skipped_ = 0;
  Cycle ff_cycles_ = 0;

  // ---- Profiling state (see SchedulerProfile) ----
  std::vector<std::string> frozen_names_;  ///< Name by frozen index.
  std::vector<int> stage_ids_;             ///< Sorted unique stages.
  std::vector<u32> stage_bucket_;          ///< Frozen index -> stage_ids_ slot.
  std::vector<u64> stage_exec_;            ///< Per-bucket executed ticks.
  std::vector<u64> stage_skip_;            ///< Per-bucket skipped ticks.
  /// Totals flushed across re-freezes (stage id -> {executed, skipped}).
  std::map<int, std::pair<u64, u64>> stage_totals_;
  u64 wheel_depth_max_ = 0;
  u64 ff_events_ = 0;
  std::array<u64, 65> ff_gap_log2_{};
  SchedulerObserver* observer_ = nullptr;
};

}  // namespace drmp::sim
