#include "sim/checkpoint.hpp"

#include <cstdio>
#include <fstream>

#include "crypto/crc.hpp"

namespace drmp::sim::snap {

namespace {

constexpr std::size_t kHeaderBytes = 8 + 4 + 8;  // magic + version + length.
constexpr std::size_t kTrailerBytes = 4;         // CRC-32.

std::string hex_u32(u32 v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", v);
  return buf;
}

}  // namespace

// ---- Writer ----

void Writer::put(const void* p, std::size_t n) {
  const auto* b = static_cast<const u8*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

void Writer::put_le(u64 v, std::size_t nbytes) {
  for (std::size_t i = 0; i < nbytes; ++i) {
    buf_.push_back(static_cast<u8>(v >> (8 * i)));
  }
}

void Writer::begin_record(std::string_view name) {
  put_le(name.size(), 4);
  put(name.data(), name.size());
  open_.push_back(buf_.size());
  put_le(0, 8);  // Body length, patched by end_record.
}

void Writer::end_record() {
  if (open_.empty()) throw std::logic_error("Writer::end_record without begin");
  const std::size_t at = open_.back();
  open_.pop_back();
  const u64 body = buf_.size() - (at + 8);
  for (std::size_t i = 0; i < 8; ++i) {
    buf_[at + i] = static_cast<u8>(body >> (8 * i));
  }
}

Bytes Writer::envelope() const {
  if (!open_.empty()) throw std::logic_error("Writer::envelope with open records");
  Bytes out;
  out.reserve(kHeaderBytes + buf_.size() + kTrailerBytes);
  out.insert(out.end(), kMagic, kMagic + 8);
  const u32 ver = kSnapshotVersion;
  for (std::size_t i = 0; i < 4; ++i) out.push_back(static_cast<u8>(ver >> (8 * i)));
  const u64 len = buf_.size();
  for (std::size_t i = 0; i < 8; ++i) out.push_back(static_cast<u8>(len >> (8 * i)));
  out.insert(out.end(), buf_.begin(), buf_.end());
  const u32 crc = crypto::Crc32::compute(buf_);
  for (std::size_t i = 0; i < 4; ++i) out.push_back(static_cast<u8>(crc >> (8 * i)));
  return out;
}

void Writer::write_file(const std::string& path) const {
  const Bytes env = envelope();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw SnapshotError("checkpoint: cannot open " + tmp + " for writing");
    f.write(reinterpret_cast<const char*>(env.data()),
            static_cast<std::streamsize>(env.size()));
    f.flush();
    if (!f) throw SnapshotError("checkpoint: short write to " + tmp);
  }
  // Atomic publish: a crash before this rename leaves the previous complete
  // snapshot untouched; a crash after it leaves the new one. Never a torn
  // file under the final name.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw SnapshotError("checkpoint: cannot rename " + tmp + " over " + path);
  }
}

// ---- Reader ----

Reader::Reader(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw SnapshotError("checkpoint: cannot open " + path);
  Bytes file((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  validate_envelope(file);
}

Reader::Reader(Bytes envelope) { validate_envelope(envelope); }

void Reader::validate_envelope(const Bytes& file) {
  if (file.size() < kHeaderBytes + kTrailerBytes ||
      std::memcmp(file.data(), kMagic, 8) != 0) {
    throw BadMagicError("snapshot rejected: bad magic (not a DRMPSNAP file)");
  }
  u32 ver = 0;
  for (std::size_t i = 0; i < 4; ++i) ver |= static_cast<u32>(file[8 + i]) << (8 * i);
  if (ver != kSnapshotVersion) {
    throw BadVersionError("snapshot rejected: format version " + std::to_string(ver) +
                          ", this build reads only version " +
                          std::to_string(kSnapshotVersion) + " (refuse, never guess)");
  }
  u64 len = 0;
  for (std::size_t i = 0; i < 8; ++i) len |= static_cast<u64>(file[12 + i]) << (8 * i);
  if (len > file.size() - kHeaderBytes - kTrailerBytes) {
    throw RecordOverrunError(
        "snapshot rejected: record 'envelope' declares " + std::to_string(len) +
        " payload bytes but only " +
        std::to_string(file.size() - kHeaderBytes - kTrailerBytes) + " are present");
  }
  payload_.assign(file.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
                  file.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes + len));
  u32 want = 0;
  const std::size_t at = kHeaderBytes + len;
  for (std::size_t i = 0; i < 4; ++i) want |= static_cast<u32>(file[at + i]) << (8 * i);
  const u32 got = crypto::Crc32::compute(payload_);
  if (got != want) {
    throw CrcMismatchError("snapshot rejected: payload CRC " + hex_u32(got) +
                           " != recorded " + hex_u32(want));
  }
}

std::size_t Reader::bound() const noexcept {
  return stack_.empty() ? payload_.size() : stack_.back().end;
}

std::string Reader::where() const {
  return stack_.empty() ? std::string("envelope") : stack_.back().name;
}

void Reader::check_remaining(std::size_t n) {
  if (pos_ + n > bound()) {
    throw RecordOverrunError("snapshot rejected: record '" + where() +
                             "' overruns its length prefix");
  }
}

void Reader::get(void* p, std::size_t n) {
  check_remaining(n);
  std::memcpy(p, payload_.data() + pos_, n);
  pos_ += n;
}

u64 Reader::get_le(std::size_t nbytes) {
  check_remaining(nbytes);
  u64 v = 0;
  for (std::size_t i = 0; i < nbytes; ++i) {
    v |= static_cast<u64>(payload_[pos_ + i]) << (8 * i);
  }
  pos_ += nbytes;
  return v;
}

std::size_t Reader::checked_count(u64 n, std::size_t elem_min_bytes) {
  if (n * elem_min_bytes > bound() - pos_) {
    throw RecordOverrunError("snapshot rejected: record '" + where() +
                             "' declares a count overrunning its length prefix");
  }
  return static_cast<std::size_t>(n);
}

void Reader::expect(std::string_view name) {
  const u64 name_len = get_le(4);
  std::string found;
  found.resize(checked_count(name_len, 1));
  get(found.data(), found.size());
  const u64 body = get_le(8);
  if (found != name) {
    throw UnknownRecordError("snapshot rejected: found record '" + found +
                             "' where '" + std::string(name) + "' was expected");
  }
  if (body > bound() - pos_) {
    throw RecordOverrunError("snapshot rejected: record '" + found +
                             "' overruns its length prefix");
  }
  stack_.push_back(Rec{std::move(found), pos_ + static_cast<std::size_t>(body)});
}

void Reader::leave() {
  if (stack_.empty()) throw std::logic_error("Reader::leave without expect");
  const Rec rec = stack_.back();
  stack_.pop_back();
  if (pos_ != rec.end) {
    // Under-consumption is as fatal as overrun: a partial restore means the
    // reader's idea of the record layout differs from the writer's.
    throw RecordOverrunError("snapshot rejected: record '" + rec.name +
                             "' has " + std::to_string(rec.end - pos_) +
                             " unconsumed bytes");
  }
}

bool Reader::at_end() const noexcept { return pos_ == bound(); }

}  // namespace drmp::sim::snap
