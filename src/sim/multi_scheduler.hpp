// MultiScheduler — lockstep advancement of many per-device schedulers.
//
// The scenario engine gives every DRMP device its own Scheduler (its own
// clock domain, component list and statistics). A fleet run advances all of
// them in lockstep: time moves in strides of `stride` cycles, and within one
// stride every active lane runs the same cycle interval through the batched
// scheduler hot path. After each stride the per-lane early-exit predicate is
// evaluated once; a lane whose predicate fired stops ticking (its device has
// drained its workload) while the rest of the fleet continues. Evaluating
// predicates once per stride — instead of once per cycle as run_until does —
// is what keeps an 8-64 device fleet out of std::function dispatch on the
// per-cycle path.
//
// Lanes share no Clockables, so within a round each lane's results are its
// own and the stride only bounds how far one lane's clock may lead
// another's. Cross-lane *events* are still possible — channel couplers
// exchange them at round edges through set_round_hook (Graphite-style lax
// synchronization): a round hook may inject state into any lane as long as
// the injected effects land at or after the round edge, which holds
// whenever the stride is at most the physical interaction horizon (see
// net/channel_coupler.hpp). Uncoupled fleets never set the hook and keep
// the original fully-independent behaviour.
//
// Quiescence-aware round skipping: after each batched run a lane's scheduler
// publishes next_wake() — the earliest cycle any of its components could
// execute a real tick. A lane whose wake lies beyond the round's target is
// not dispatched at all (not even for a fast-forward call); the cycles it
// owes accumulate and are replayed in one batched call the moment its wake
// falls inside a round (or at run exit, so lane clocks still line up with
// the lockstep clock). Nothing mutates a lane between rounds except its
// done-predicate, which must be a pure read, so the skip decision is exact
// and the results remain bit-identical to dispatching every round — with
// any worker count.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/scheduler.hpp"

namespace drmp::sim {

class MultiScheduler {
 public:
  /// Fires once a lane's workload is drained; evaluated once per stride.
  using DonePredicate = std::function<bool()>;

  static constexpr Cycle kDefaultStride = 1024;

  /// Registers a device scheduler as a lane. A null predicate means the lane
  /// runs for the full cycle budget. Returns the lane index.
  std::size_t add(Scheduler& sched, DonePredicate done = nullptr);

  /// Installs a hook invoked on the calling thread at the end of every
  /// lockstep round, after lanes ran and retirements were decided (workers
  /// are parked on the barrier). This is the lax-synchronization exchange
  /// point: cross-lane event couplers (net::ChannelCoupler) drain their
  /// outboxes here, so anything one lane generated in the round just ended
  /// is visible to its peers before any lane enters the next round. The
  /// hook may mutate lane components and wake them (Clockable::wake_self
  /// between runs resets the lane's next_wake hint, so a round-skipped lane
  /// is dispatched again); it must schedule effects only at or after the
  /// current round edge, or bit-identity across worker counts is lost.
  void set_round_hook(std::function<void()> hook) { round_hook_ = std::move(hook); }

  /// Installs a hook fired at the first round edge at or past every multiple
  /// of `every` run-relative cycles, after the round hook, with workers
  /// parked. Before it fires, every still-active lane's deferred cycles are
  /// flushed (skipped rounds are provably no-op replays, so flushing early
  /// is bit-identical), which puts *every* lane — retired lanes were flushed
  /// at retirement — exactly on the lockstep edge: the quiescent state the
  /// checkpoint machinery (scenario::ScenarioEngine::checkpoint_every)
  /// snapshots. The hook receives the run-relative elapsed cycle count and
  /// must not advance any lane.
  void set_edge_hook(Cycle every, std::function<void(Cycle)> hook) {
    edge_every_ = every;
    edge_hook_ = std::move(hook);
  }

  struct RunResult {
    Cycle cycles = 0;              ///< Lockstep cycles elapsed (max over lanes).
    std::size_t lanes_finished = 0;  ///< Lanes whose predicate fired.
    bool all_finished = false;       ///< Every predicated lane finished.
    u64 rounds = 0;                  ///< Lockstep rounds executed.
  };

  /// Advances all lanes in lockstep until every predicate fired or
  /// `max_cycles` elapsed. `stride` is the lockstep granularity: a finished
  /// lane overshoots its predicate by at most stride-1 cycles.
  ///
  /// `workers` > 1 advances the lanes of each stride round on a persistent
  /// pool of that many threads (spawned once per run, parked on a barrier
  /// between rounds). Lanes are independent clock domains sharing no state,
  /// and predicates run on the calling thread while workers are parked, so
  /// the result is bit-identical to the single-threaded run — only
  /// wall-clock time changes.
  RunResult run(Cycle max_cycles, Cycle stride = kDefaultStride,
                unsigned workers = 1);

  std::size_t lane_count() const noexcept { return lanes_.size(); }
  bool lane_finished(std::size_t i) const { return lanes_[i].finished; }
  /// Cycles this lane actually ran across all run() calls.
  Cycle lane_cycles(std::size_t i) const { return lanes_[i].cycles_run; }
  // ---- Lane-stall profile (bench surface): quiescence-aware round skips ----
  /// Rounds this lane was not dispatched because its next_wake lay past the
  /// round target.
  u64 lane_rounds_skipped(std::size_t i) const {
    return lanes_[i].rounds_skipped;
  }
  /// Cycles this lane spent parked in skipped rounds (later replayed).
  Cycle lane_stall_cycles(std::size_t i) const {
    return lanes_[i].stall_cycles;
  }

 private:
  struct Lane {
    Scheduler* sched;
    DonePredicate done;
    bool finished = false;
    Cycle cycles_run = 0;
    u64 rounds_skipped = 0;
    Cycle stall_cycles = 0;
  };

  std::vector<Lane> lanes_;
  std::function<void()> round_hook_;
  std::function<void(Cycle)> edge_hook_;
  Cycle edge_every_ = 0;
};

}  // namespace drmp::sim
