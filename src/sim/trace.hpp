// Signal tracing: the cycle-approximate equivalent of the Simulink scopes the
// thesis uses for Figs. 5.1-5.9. Components publish named integer channels;
// the recorder stores change events and can render ASCII timing diagrams and
// CSV series for the bench harnesses.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace drmp::sim {

/// A change event on one channel.
struct TraceEvent {
  Cycle cycle;
  i64 value;
};

class TraceChannel {
 public:
  /// Default retention bound: generous for the figure benches (tens of
  /// thousands of edges) but finite, so a long-running scope can no longer
  /// grow without bound.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit TraceChannel(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  /// Records `value` at `cycle` if it differs from the last recorded value.
  /// Once `capacity()` change events are retained, further *new* events are
  /// dropped (counted in dropped()); same-cycle overwrites still apply.
  void record(Cycle cycle, i64 value);

  /// A muted channel drops record() calls (fleet runs disable tracing so the
  /// per-cycle hot path does no event-vector work).
  void set_enabled(bool v) noexcept { enabled_ = v; }
  bool enabled() const noexcept { return enabled_; }

  void set_capacity(std::size_t cap) noexcept {
    capacity_ = cap == 0 ? 1 : cap;
  }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Change events discarded because the channel was at capacity.
  u64 dropped() const noexcept { return dropped_; }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }

  /// Value of the channel at `cycle` (last change at or before it).
  std::optional<i64> value_at(Cycle cycle) const;

  /// Total cycles in [from, to) during which the channel held a non-zero
  /// value. Used for busy-time accounting (Tables 5.1/5.2).
  Cycle active_cycles(Cycle from, Cycle to) const;

 private:
  std::string name_;
  std::vector<TraceEvent> events_;
  std::size_t capacity_ = kDefaultCapacity;
  u64 dropped_ = 0;
  bool enabled_ = true;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  /// Constructs with tracing already on or off: fleet paths build their
  /// devices muted from the first cycle instead of muting after the fact
  /// (which used to let construction-time edges slip into the buffers).
  explicit TraceRecorder(bool enabled) : enabled_(enabled) {}

  /// Returns (creating on first use) the channel with the given name.
  TraceChannel& channel(const std::string& name);

  /// Mutes / unmutes every existing and future channel. Fleet simulations
  /// disable their per-device recorders: with dozens of devices the trace
  /// event vectors are pure overhead on the batched hot path.
  void set_enabled(bool v);
  bool enabled() const noexcept { return enabled_; }

  bool has_channel(const std::string& name) const { return channels_.count(name) != 0; }

  /// Change events dropped across all channels (capacity caps hit).
  u64 dropped() const noexcept;

  const TraceChannel& channel_const(const std::string& name) const { return channels_.at(name); }

  std::vector<std::string> channel_names() const;

  /// Renders an ASCII waveform of the selected channels over [from, to),
  /// sampled into `width` columns. Non-zero values print as their value digit
  /// (mod 10) or '#', zero prints as '.'. This is the textual stand-in for
  /// the Simulink scope screenshots in the paper.
  std::string ascii_waveform(const std::vector<std::string>& names, Cycle from, Cycle to,
                             std::size_t width = 100) const;

  /// CSV dump: cycle,<ch1>,<ch2>,... at every change point.
  std::string csv(const std::vector<std::string>& names, Cycle from, Cycle to) const;

 private:
  std::map<std::string, TraceChannel> channels_;
  bool enabled_ = true;
};

}  // namespace drmp::sim
