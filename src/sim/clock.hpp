// Clock domains for the cycle-stepped simulation.
//
// The simulation advances in ticks of the *architecture clock* (the RHCP
// clock, 200 MHz in the prototype, thesis §5.4). Slower domains — the CPU
// clock and the per-protocol PHY byte clocks — are derived with fractional
// dividers so non-integer ratios (e.g. 200 MHz / 11 Mbps line rate) stay
// cycle-accurate in the long run.
#pragma once

#include "common/types.hpp"

namespace drmp::sim {

/// Frequency in Hz.
using Hz = double;

/// Converts between cycles of the architecture clock and wall-clock time.
class TimeBase {
 public:
  explicit TimeBase(Hz arch_freq) : arch_freq_(arch_freq) {}

  Hz arch_freq() const noexcept { return arch_freq_; }

  double cycles_to_us(Cycle c) const noexcept { return static_cast<double>(c) / arch_freq_ * 1e6; }
  double cycles_to_ns(Cycle c) const noexcept { return static_cast<double>(c) / arch_freq_ * 1e9; }
  Cycle us_to_cycles(double us) const noexcept {
    return static_cast<Cycle>(us * 1e-6 * arch_freq_ + 0.5);
  }
  Cycle ns_to_cycles(double ns) const noexcept {
    return static_cast<Cycle>(ns * 1e-9 * arch_freq_ + 0.5);
  }

 private:
  Hz arch_freq_;
};

/// A derived clock domain ticking at `freq` while the master clock ticks at
/// `arch_freq`. Call advance() every architecture cycle; it returns how many
/// derived-domain edges fall in that cycle (0 or 1 for slower domains).
class DerivedClock {
 public:
  DerivedClock(Hz arch_freq, Hz freq) : step_(freq / arch_freq) {}

  unsigned advance() noexcept {
    acc_ += step_;
    unsigned edges = 0;
    while (acc_ >= 1.0) {
      acc_ -= 1.0;
      ++edges;
    }
    return edges;
  }

  void reset() noexcept { acc_ = 0.0; }

 private:
  double step_;
  double acc_ = 0.0;
};

}  // namespace drmp::sim
