#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace drmp::sim {

void TraceChannel::record(Cycle cycle, i64 value) {
  if (!enabled_) return;
  if (!events_.empty() && events_.back().value == value) return;
  if (!events_.empty() && events_.back().cycle == cycle) {
    events_.back().value = value;
    // Collapse if the overwrite made it equal to its predecessor.
    if (events_.size() >= 2 && events_[events_.size() - 2].value == value) {
      events_.pop_back();
    }
    return;
  }
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back({cycle, value});
}

std::optional<i64> TraceChannel::value_at(Cycle cycle) const {
  if (events_.empty() || events_.front().cycle > cycle) return std::nullopt;
  auto it = std::upper_bound(events_.begin(), events_.end(), cycle,
                             [](Cycle c, const TraceEvent& e) { return c < e.cycle; });
  return std::prev(it)->value;
}

Cycle TraceChannel::active_cycles(Cycle from, Cycle to) const {
  if (to <= from) return 0;
  Cycle busy = 0;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].value == 0) continue;
    const Cycle start = std::max(events_[i].cycle, from);
    const Cycle end =
        std::min((i + 1 < events_.size()) ? events_[i + 1].cycle : to, to);
    if (end > start) busy += end - start;
  }
  return busy;
}

TraceChannel& TraceRecorder::channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_.emplace(name, TraceChannel{name}).first;
    it->second.set_enabled(enabled_);
  }
  return it->second;
}

void TraceRecorder::set_enabled(bool v) {
  enabled_ = v;
  for (auto& [name, ch] : channels_) ch.set_enabled(v);
}

u64 TraceRecorder::dropped() const noexcept {
  u64 total = 0;
  for (const auto& [name, ch] : channels_) total += ch.dropped();
  return total;
}

std::vector<std::string> TraceRecorder::channel_names() const {
  std::vector<std::string> out;
  out.reserve(channels_.size());
  for (const auto& [k, v] : channels_) out.push_back(k);
  return out;
}

std::string TraceRecorder::ascii_waveform(const std::vector<std::string>& names, Cycle from,
                                          Cycle to, std::size_t width) const {
  std::ostringstream os;
  if (to <= from || width == 0) return {};
  const double span = static_cast<double>(to - from);
  std::size_t label_w = 0;
  for (const auto& n : names) label_w = std::max(label_w, n.size());
  for (const auto& n : names) {
    os << n << std::string(label_w - n.size(), ' ') << " |";
    auto it = channels_.find(n);
    if (it == channels_.end()) {
      os << std::string(width, '?') << "|\n";
      continue;
    }
    for (std::size_t col = 0; col < width; ++col) {
      const Cycle c = from + static_cast<Cycle>(span * static_cast<double>(col) / static_cast<double>(width));
      const Cycle cn = from + static_cast<Cycle>(span * static_cast<double>(col + 1) / static_cast<double>(width));
      // A column shows activity if the channel is non-zero anywhere in it.
      const Cycle act = it->second.active_cycles(c, std::max(cn, c + 1));
      if (act == 0) {
        os << '.';
      } else {
        const auto v = it->second.value_at(std::max(cn, c + 1) - 1).value_or(1);
        if (v > 0 && v < 10) {
          os << static_cast<char>('0' + v);
        } else {
          os << '#';
        }
      }
    }
    os << "|\n";
  }
  return os.str();
}

std::string TraceRecorder::csv(const std::vector<std::string>& names, Cycle from, Cycle to) const {
  std::ostringstream os;
  os << "cycle";
  for (const auto& n : names) os << ',' << n;
  os << '\n';
  // Collect all change cycles in range.
  std::vector<Cycle> points;
  for (const auto& n : names) {
    auto it = channels_.find(n);
    if (it == channels_.end()) continue;
    for (const auto& e : it->second.events()) {
      if (e.cycle >= from && e.cycle < to) points.push_back(e.cycle);
    }
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  for (Cycle c : points) {
    os << c;
    for (const auto& n : names) {
      auto it = channels_.find(n);
      os << ',';
      if (it != channels_.end()) os << it->second.value_at(c).value_or(0);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace drmp::sim
