#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <utility>

namespace drmp::sim {

void Clockable::wake_self() noexcept {
  if (wake_sched_ != nullptr) wake_sched_->wake_component(wake_index_);
}

void Scheduler::add(Clockable& c, std::string name, int stage) {
  entries_.push_back(Entry{&c, stage});
  names_.push_back(std::move(name));
  batch_dirty_ = true;
}

void Scheduler::freeze() {
  // A re-freeze rebuilds the per-stage counter vectors below; flush what
  // they hold so profile() never loses ticks across late registrations.
  for (std::size_t b = 0; b < stage_ids_.size(); ++b) {
    auto& [exec, skip] = stage_totals_[stage_ids_[b]];
    exec += stage_exec_[b];
    skip += stage_skip_[b];
  }
  // Stable sort keeps registration order within a stage, so an all-default
  // scheduler executes in exact registration order (the legacy contract).
  std::vector<std::size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return entries_[a].stage < entries_[b].stage;
                   });
  batch_.clear();
  batch_.reserve(order.size());
  frozen_names_.clear();
  frozen_names_.reserve(order.size());
  stage_ids_.clear();
  stage_bucket_.clear();
  stage_bucket_.reserve(order.size());
  for (const std::size_t i : order) {
    batch_.push_back(entries_[i].component);
    frozen_names_.push_back(names_[i]);
    // `order` is stage-sorted, so unique stages arrive in ascending runs.
    if (stage_ids_.empty() || stage_ids_.back() != entries_[i].stage) {
      stage_ids_.push_back(entries_[i].stage);
    }
    stage_bucket_.push_back(static_cast<u32>(stage_ids_.size() - 1));
  }
  stage_exec_.assign(stage_ids_.size(), 0);
  stage_skip_.assign(stage_ids_.size(), 0);
  // Bind the wake route: wake_self() must reach this scheduler's active-set
  // bookkeeping. A component lives in exactly one scheduler in this code
  // base; re-freezing (or re-registering elsewhere) rebinds it.
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    batch_[i]->wake_sched_ = this;
    batch_[i]->wake_index_ = static_cast<u32>(i);
  }
  batch_dirty_ = false;
}

void Scheduler::step() {
  if (batch_dirty_) freeze();
  for (Clockable* c : batch_) {
    c->tick();
  }
  ++now_;
}

void Scheduler::run_cycles(Cycle n) {
  for (Cycle i = 0; i < n; ++i) {
    step();
  }
}

void Scheduler::run_cycles_batched_every_tick(Cycle n) {
  // The pre-quiescence hot path: the component array lives in locals. The
  // member clock still advances every cycle so components that sample now()
  // mid-tick observe the same values as under run_cycles.
  Clockable* const* comps = batch_.data();
  const std::size_t count = batch_.size();
  for (Cycle i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < count; ++k) {
      comps[k]->tick();
    }
    ++now_;
  }
  ticks_executed_ += n * count;
  for (std::size_t k = 0; k < count; ++k) stage_exec_[stage_bucket_[k]] += n;
  next_wake_ = now_;
}

void Scheduler::enter_batched() {
  in_batched_run_ = true;
  in_cycle_ = false;
  cursor_ = kNoCursor;
  states_.assign(batch_.size(), CompState{});
  wheel_ = {};
  active_.clear();
  awake_lazy_ = 0;
  // Entry partition: every component is fully caught up here, so bounds are
  // relative to the next cycle to execute (now_).
  for (u32 i = 0; i < batch_.size(); ++i) {
    CompState& st = states_[i];
    st.eager = batch_[i]->global_skip_only();
    if (st.eager) {
      active_.insert(i);  // Eager components stay in the tick loop.
      continue;
    }
    const Cycle q = batch_[i]->quiescent_for();
    if (q == 0) {
      active_.insert(i);
      ++awake_lazy_;
    } else {
      st.sleeping = true;
      st.slept_from = now_;
      if (q != Clockable::kIdleForever && q <= Clockable::kIdleForever - now_) {
        wheel_.push(WheelEntry{now_ + q, i, st.gen});
        wheel_depth_max_ = std::max<u64>(wheel_depth_max_, wheel_.size());
      }
    }
  }
}

void Scheduler::exit_batched() {
  // Settle: every sleeping component is caught up through the last executed
  // cycle, so introspection (stats, counters, internal clocks) between runs
  // is indistinguishable from the every-tick path.
  for (u32 i = 0; i < states_.size(); ++i) {
    CompState& st = states_[i];
    if (!st.sleeping) continue;
    const Cycle owed = now_ - st.slept_from;
    if (owed > 0) {
      batch_[i]->skip_idle(owed);
      ticks_skipped_ += owed;
      stage_skip_[stage_bucket_[i]] += owed;
      if (observer_ != nullptr) {
        observer_->on_skip_span(frozen_names_[i], st.slept_from, owed);
      }
    }
    st.sleeping = false;
    ++st.gen;
  }
  in_batched_run_ = false;
  // Lane-level wake hint for MultiScheduler: when the whole scheduler is
  // quiescent, report the earliest cycle a real tick could occur.
  Cycle min_q = Clockable::kIdleForever;
  for (Clockable* c : batch_) {
    const Cycle q = c->quiescent_for();
    min_q = std::min(min_q, q);
    if (min_q == 0) break;
  }
  if (min_q == 0 || batch_.empty()) {
    next_wake_ = now_;
  } else if (min_q == Clockable::kIdleForever || min_q > Clockable::kIdleForever - now_) {
    next_wake_ = Clockable::kIdleForever;
  } else {
    next_wake_ = now_ + min_q;
  }
}

void Scheduler::wake_component(u32 idx) {
  if (!in_batched_run_) {
    // External input between runs: the published lane hint no longer
    // proves quiescence (the next batched entry re-partitions anyway).
    next_wake_ = now_;
    return;
  }
  CompState& st = states_[idx];
  if (!st.sleeping) return;
  st.sleeping = false;
  ++st.gen;  // Any wake-wheel entry for this sleep period is now stale.
  // Catch-up window: while mid-cycle, a target whose tick slot has not yet
  // passed this cycle owes [slept_from, now_) and then really ticks at now_
  // (the legacy path would observe the just-delivered input this cycle); a
  // target whose slot already passed owes [slept_from, now_] and resumes at
  // now_+1 — exactly when legacy would first see the input.
  Cycle owed = now_ - st.slept_from;
  if (in_cycle_ && idx <= cursor_) ++owed;
  if (owed > 0) {
    batch_[idx]->skip_idle(owed);
    ticks_skipped_ += owed;
    stage_skip_[stage_bucket_[idx]] += owed;
    if (observer_ != nullptr) {
      observer_->on_skip_span(frozen_names_[idx], st.slept_from, owed);
    }
  }
  active_.insert(idx);
  ++awake_lazy_;
}

void Scheduler::run_cycles_batched(Cycle n) {
  if (batch_dirty_) freeze();
  if (!idle_skip_ || batch_.empty()) {
    run_cycles_batched_every_tick(n);
    return;
  }
  const Cycle limit = now_ + n;
  enter_batched();
  while (now_ < limit) {
    // Wake-wheel: scheduled bounds that expire this cycle.
    while (!wheel_.empty() && wheel_.top().wake_at <= now_) {
      const WheelEntry e = wheel_.top();
      wheel_.pop();
      if (states_[e.index].sleeping && states_[e.index].gen == e.gen) {
        wake_component(e.index);
      }
    }
    // Globally-quiescent gap: nothing but eager components is awake. Fast-
    // forward to the earliest wake (or the nearest eager event), bulk-
    // accounting the gap into the eager components immediately so their
    // externally visible clocks are exact at every cycle anything runs.
    if (awake_lazy_ == 0) {
      Cycle gap = limit - now_;
      if (!wheel_.empty()) gap = std::min(gap, wheel_.top().wake_at - now_);
      for (const u32 idx : active_) {
        gap = std::min(gap, batch_[idx]->quiescent_for());
        if (gap == 0) break;
      }
      if (gap > 0) {
        for (const u32 idx : active_) {
          batch_[idx]->skip_idle(gap);
          stage_skip_[stage_bucket_[idx]] += gap;
        }
        ticks_skipped_ += gap * active_.size();
        if (observer_ != nullptr) observer_->on_fast_forward(now_, gap);
        now_ += gap;
        ff_cycles_ += gap;
        ++ff_events_;
        ++ff_gap_log2_[static_cast<std::size_t>(std::bit_width(gap))];
        continue;
      }
    }
    // One real cycle over the awake set, in frozen (stage) order. std::set
    // iteration tolerates mid-loop insertion by wake_component: an index
    // greater than the cursor is picked up later in this same pass.
    in_cycle_ = true;
    for (auto it = active_.begin(); it != active_.end();) {
      const u32 idx = *it;
      cursor_ = idx;
      Clockable* c = batch_[idx];
      c->tick();
      ++ticks_executed_;
      ++stage_exec_[stage_bucket_[idx]];
      CompState& st = states_[idx];
      if (!st.eager) {
        const Cycle q = c->quiescent_for();
        if (q > 0) {
          st.sleeping = true;
          ++st.gen;
          st.slept_from = now_ + 1;
          if (q != Clockable::kIdleForever && q < Clockable::kIdleForever - now_ - 1) {
            wheel_.push(WheelEntry{now_ + 1 + q, idx, st.gen});
            wheel_depth_max_ = std::max<u64>(wheel_depth_max_, wheel_.size());
          }
          it = active_.erase(it);
          --awake_lazy_;
          continue;
        }
      }
      ++it;
    }
    in_cycle_ = false;
    cursor_ = kNoCursor;
    ++now_;
  }
  exit_batched();
}

SchedulerProfile Scheduler::profile() const {
  SchedulerProfile p;
  p.ticks_executed = ticks_executed_;
  p.ticks_skipped = ticks_skipped_;
  p.ff_cycles = ff_cycles_;
  p.ff_events = ff_events_;
  p.wheel_depth_max = wheel_depth_max_;
  p.ff_gap_log2 = ff_gap_log2_;
  // Current counter vectors plus whatever earlier freezes flushed.
  std::map<int, std::pair<u64, u64>> by_stage = stage_totals_;
  for (std::size_t b = 0; b < stage_ids_.size(); ++b) {
    auto& [exec, skip] = by_stage[stage_ids_[b]];
    exec += stage_exec_[b];
    skip += stage_skip_[b];
  }
  p.stages.reserve(by_stage.size());
  for (const auto& [stage, counts] : by_stage) {
    p.stages.push_back(
        SchedulerProfile::Stage{stage, counts.first, counts.second});
  }
  return p;
}

bool Scheduler::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  const Cycle limit = now_ + max_cycles;
  while (now_ < limit) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace drmp::sim
