#include "sim/scheduler.hpp"

#include <utility>

namespace drmp::sim {

void Scheduler::add(Clockable& c, std::string name) {
  components_.push_back(&c);
  names_.push_back(std::move(name));
}

void Scheduler::step() {
  for (Clockable* c : components_) {
    c->tick();
  }
  ++now_;
}

void Scheduler::run_cycles(Cycle n) {
  for (Cycle i = 0; i < n; ++i) {
    step();
  }
}

bool Scheduler::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  const Cycle limit = now_ + max_cycles;
  while (now_ < limit) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace drmp::sim
