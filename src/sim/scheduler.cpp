#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace drmp::sim {

void Scheduler::add(Clockable& c, std::string name, int stage) {
  entries_.push_back(Entry{&c, stage});
  names_.push_back(std::move(name));
  batch_dirty_ = true;
}

void Scheduler::freeze() {
  // Stable sort keeps registration order within a stage, so an all-default
  // scheduler executes in exact registration order (the legacy contract).
  std::vector<Entry> ordered = entries_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Entry& a, const Entry& b) { return a.stage < b.stage; });
  batch_.clear();
  batch_.reserve(ordered.size());
  for (const Entry& e : ordered) batch_.push_back(e.component);
  batch_dirty_ = false;
}

void Scheduler::step() {
  if (batch_dirty_) freeze();
  for (Clockable* c : batch_) {
    c->tick();
  }
  ++now_;
}

void Scheduler::run_cycles(Cycle n) {
  for (Cycle i = 0; i < n; ++i) {
    step();
  }
}

void Scheduler::run_cycles_batched(Cycle n) {
  if (batch_dirty_) freeze();
  // Hot path: the component array lives in locals. The member clock still
  // advances every cycle so components that sample now() mid-tick observe
  // the same values as under run_cycles.
  Clockable* const* comps = batch_.data();
  const std::size_t count = batch_.size();
  for (Cycle i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < count; ++k) {
      comps[k]->tick();
    }
    ++now_;
  }
}

bool Scheduler::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  const Cycle limit = now_ + max_cycles;
  while (now_ < limit) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace drmp::sim
