#include "sim/scheduler.hpp"

#include "sim/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <utility>

namespace drmp::sim {

void Clockable::wake_self() noexcept {
  if (wake_sched_ != nullptr) wake_sched_->wake_component(wake_index_);
}

void Scheduler::add(Clockable& c, std::string name, int stage) {
  entries_.push_back(Entry{&c, stage});
  names_.push_back(std::move(name));
  batch_dirty_ = true;
}

void Scheduler::freeze() {
  // A re-freeze rebuilds the per-stage counter vectors below; flush what
  // they hold so profile() never loses ticks across late registrations.
  for (std::size_t b = 0; b < stage_ids_.size(); ++b) {
    auto& [exec, skip] = stage_totals_[stage_ids_[b]];
    exec += stage_exec_[b];
    skip += stage_skip_[b];
  }
  // Stable sort keeps registration order within a stage, so an all-default
  // scheduler executes in exact registration order (the legacy contract).
  std::vector<std::size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return entries_[a].stage < entries_[b].stage;
                   });
  batch_.clear();
  batch_.reserve(order.size());
  frozen_names_.clear();
  frozen_names_.reserve(order.size());
  stage_ids_.clear();
  stage_bucket_.clear();
  stage_bucket_.reserve(order.size());
  for (const std::size_t i : order) {
    batch_.push_back(entries_[i].component);
    frozen_names_.push_back(names_[i]);
    // `order` is stage-sorted, so unique stages arrive in ascending runs.
    if (stage_ids_.empty() || stage_ids_.back() != entries_[i].stage) {
      stage_ids_.push_back(entries_[i].stage);
    }
    stage_bucket_.push_back(static_cast<u32>(stage_ids_.size() - 1));
  }
  stage_exec_.assign(stage_ids_.size(), 0);
  stage_skip_.assign(stage_ids_.size(), 0);
  // Bind the wake route: wake_self() must reach this scheduler's active-set
  // bookkeeping. A component lives in exactly one scheduler in this code
  // base; re-freezing (or re-registering elsewhere) rebinds it.
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    batch_[i]->wake_sched_ = this;
    batch_[i]->wake_index_ = static_cast<u32>(i);
  }
  batch_dirty_ = false;
}

void Scheduler::step() {
  if (batch_dirty_) freeze();
  for (Clockable* c : batch_) {
    c->tick();
  }
  ++now_;
}

void Scheduler::run_cycles(Cycle n) {
  for (Cycle i = 0; i < n; ++i) {
    step();
  }
}

void Scheduler::run_cycles_batched_every_tick(Cycle n) {
  // The pre-quiescence hot path: the component array lives in locals. The
  // member clock still advances every cycle so components that sample now()
  // mid-tick observe the same values as under run_cycles.
  Clockable* const* comps = batch_.data();
  const std::size_t count = batch_.size();
  for (Cycle i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < count; ++k) {
      comps[k]->tick();
    }
    ++now_;
  }
  ticks_executed_ += n * count;
  for (std::size_t k = 0; k < count; ++k) stage_exec_[stage_bucket_[k]] += n;
  next_wake_ = now_;
}

void Scheduler::enter_batched() {
  in_batched_run_ = true;
  in_cycle_ = false;
  cursor_ = kNoCursor;
  states_.assign(batch_.size(), CompState{});
  wheel_.reset(now_);
  wheel_stale_ = 0;
  active_.reset(batch_.size());
  awake_lazy_ = 0;
  // Entry partition: every component is fully caught up here, so bounds are
  // relative to the next cycle to execute (now_).
  for (u32 i = 0; i < batch_.size(); ++i) {
    CompState& st = states_[i];
    st.eager = batch_[i]->global_skip_only();
    if (st.eager) {
      active_.insert(i);  // Eager components stay in the tick loop.
      continue;
    }
    const Cycle q = batch_[i]->quiescent_for();
    if (q == 0) {
      active_.insert(i);
      ++awake_lazy_;
    } else {
      st.sleeping = true;
      st.slept_from = now_;
      if (q != Clockable::kIdleForever && q <= Clockable::kIdleForever - now_) {
        wheel_.push(now_ + q, i, st.gen);
        st.in_wheel = true;
        wheel_depth_max_ = std::max<u64>(wheel_depth_max_, wheel_.size());
      }
    }
  }
}

void Scheduler::exit_batched() {
  // Settle: every sleeping component is caught up through the last executed
  // cycle, so introspection (stats, counters, internal clocks) between runs
  // is indistinguishable from the every-tick path.
  for (u32 i = 0; i < states_.size(); ++i) {
    CompState& st = states_[i];
    if (!st.sleeping) continue;
    const Cycle owed = now_ - st.slept_from;
    if (owed > 0) {
      batch_[i]->skip_idle(owed);
      ticks_skipped_ += owed;
      stage_skip_[stage_bucket_[i]] += owed;
      if (observer_ != nullptr) {
        observer_->on_skip_span(frozen_names_[i], st.slept_from, owed);
      }
    }
    st.sleeping = false;
    ++st.gen;
  }
  in_batched_run_ = false;
  // Lane-level wake hint for MultiScheduler: when the whole scheduler is
  // quiescent, report the earliest cycle a real tick could occur.
  Cycle min_q = Clockable::kIdleForever;
  for (Clockable* c : batch_) {
    const Cycle q = c->quiescent_for();
    min_q = std::min(min_q, q);
    if (min_q == 0) break;
  }
  if (min_q == 0 || batch_.empty()) {
    next_wake_ = now_;
  } else if (min_q == Clockable::kIdleForever || min_q > Clockable::kIdleForever - now_) {
    next_wake_ = Clockable::kIdleForever;
  } else {
    next_wake_ = now_ + min_q;
  }
}

void Scheduler::wake_component(u32 idx) {
  if (!in_batched_run_) {
    // External input between runs: the published lane hint no longer
    // proves quiescence (the next batched entry re-partitions anyway).
    next_wake_ = now_;
    return;
  }
  CompState& st = states_[idx];
  if (!st.sleeping) return;
  st.sleeping = false;
  ++st.gen;  // Any wake-wheel entry for this sleep period is now stale.
  if (st.in_wheel) {
    st.in_wheel = false;
    ++wheel_stale_;  // Woken early: its wheel entry lingers until purged.
  }
  // Catch-up window: while mid-cycle, a target whose tick slot has not yet
  // passed this cycle owes [slept_from, now_) and then really ticks at now_
  // (the legacy path would observe the just-delivered input this cycle); a
  // target whose slot already passed owes [slept_from, now_] and resumes at
  // now_+1 — exactly when legacy would first see the input.
  Cycle owed = now_ - st.slept_from;
  if (in_cycle_ && idx <= cursor_) ++owed;
  if (owed > 0) {
    batch_[idx]->skip_idle(owed);
    ticks_skipped_ += owed;
    stage_skip_[stage_bucket_[idx]] += owed;
    if (observer_ != nullptr) {
      observer_->on_skip_span(frozen_names_[idx], st.slept_from, owed);
    }
  }
  active_.insert(idx);
  ++awake_lazy_;
}

void Scheduler::drain_wheel() {
  // Scheduled bounds that expire this cycle. Entries are drained in bucket
  // order, not time order — every drained entry is due at now_ (or stale),
  // and wake_component is order-independent within a cycle boundary.
  wheel_.advance(now_, [this](const TimingWheel::Entry& e) {
    CompState& st = states_[e.index];
    if (st.sleeping && st.gen == e.gen) {
      st.in_wheel = false;
      wake_component(e.index);
    } else if (wheel_stale_ > 0) {
      --wheel_stale_;  // A stale entry just fell out on its own.
    }
  });
  // Lazy-deletion leak fix: components woken early leave their entries
  // behind; sweep them out as soon as they are the majority so the wheel's
  // depth tracks the *sleeping* population, not the wake history.
  if (wheel_stale_ >= kPurgeMinStale && wheel_stale_ * 2 >= wheel_.size()) {
    wheel_.purge([this](const TimingWheel::Entry& e) {
      const CompState& st = states_[e.index];
      return st.sleeping && st.gen == e.gen;
    });
    wheel_stale_ = 0;
    ++wheel_purges_;
  }
}

void Scheduler::run_cycles_batched(Cycle n) {
  if (batch_dirty_) freeze();
  if (!idle_skip_ || batch_.empty()) {
    run_cycles_batched_every_tick(n);
    return;
  }
  const Cycle limit = now_ + n;
  enter_batched();
  while (now_ < limit) {
    drain_wheel();
    // Globally-quiescent gap: nothing but eager components is awake. Fast-
    // forward to the earliest wake bound (or the nearest eager event),
    // bulk-accounting the gap into the eager components immediately so
    // their externally visible clocks are exact at every cycle anything
    // runs. The wheel reports a *lower* bound (a bucket floor above level
    // 0), so a long gap may take a few hops — additive skip chunking makes
    // that bit-identical to one jump.
    if (awake_lazy_ == 0) {
      Cycle gap = limit - now_;
      const Cycle nb = wheel_.next_bound();
      if (nb != TimingWheel::kNever) gap = std::min(gap, nb - now_);
      for (std::size_t w = 0; w < active_.word_count() && gap > 0; ++w) {
        u64 m = active_.word(w);
        while (m != 0 && gap > 0) {
          const auto idx = static_cast<u32>(w * 64) +
                           static_cast<u32>(std::countr_zero(m));
          m &= m - 1;
          gap = std::min(gap, batch_[idx]->quiescent_for());
        }
      }
      if (gap > 0) {
        for (std::size_t w = 0; w < active_.word_count(); ++w) {
          u64 m = active_.word(w);
          while (m != 0) {
            const auto idx = static_cast<u32>(w * 64) +
                             static_cast<u32>(std::countr_zero(m));
            m &= m - 1;
            batch_[idx]->skip_idle(gap);
            stage_skip_[stage_bucket_[idx]] += gap;
          }
        }
        ticks_skipped_ += gap * active_.size();
        if (observer_ != nullptr) observer_->on_fast_forward(now_, gap);
        now_ += gap;
        ff_cycles_ += gap;
        ++ff_events_;
        ++ff_gap_log2_[static_cast<std::size_t>(std::bit_width(gap))];
        continue;
      }
    }
    // One real cycle over the awake set, in frozen (stage) order. After
    // each tick the word is re-read above the cursor, so an index inserted
    // by wake_component mid-pass is picked up later in this same pass —
    // the same semantics the std::set iteration used to provide.
    in_cycle_ = true;
    for (std::size_t w = 0; w < active_.word_count(); ++w) {
      u64 m = active_.word(w);
      while (m != 0) {
        const auto bit = static_cast<u32>(std::countr_zero(m));
        const auto idx = static_cast<u32>(w * 64) + bit;
        cursor_ = idx;
        Clockable* c = batch_[idx];
        c->tick();
        ++ticks_executed_;
        ++stage_exec_[stage_bucket_[idx]];
        CompState& st = states_[idx];
        if (!st.eager) {
          const Cycle q = c->quiescent_for();
          if (q > 0) {
            st.sleeping = true;
            ++st.gen;
            st.slept_from = now_ + 1;
            if (q != Clockable::kIdleForever &&
                q < Clockable::kIdleForever - now_ - 1) {
              wheel_.push(now_ + 1 + q, idx, st.gen);
              st.in_wheel = true;
              wheel_depth_max_ = std::max<u64>(wheel_depth_max_, wheel_.size());
            }
            active_.erase(idx);
            --awake_lazy_;
          }
        }
        // Re-read above the cursor: picks up same-cycle wakes at higher
        // indices of this word (u64{2} << 63 wraps to 0, masking the word
        // out entirely).
        m = active_.word(w) & ~((u64{2} << bit) - 1);
      }
    }
    in_cycle_ = false;
    cursor_ = kNoCursor;
    ++now_;
  }
  exit_batched();
}

SchedulerProfile Scheduler::profile() const {
  SchedulerProfile p;
  p.ticks_executed = ticks_executed_;
  p.ticks_skipped = ticks_skipped_;
  p.ff_cycles = ff_cycles_;
  p.ff_events = ff_events_;
  p.wheel_depth_max = wheel_depth_max_;
  p.wheel_cascades = wheel_.cascades();
  p.wheel_purges = wheel_purges_;
  p.ff_gap_log2 = ff_gap_log2_;
  // Current counter vectors plus whatever earlier freezes flushed.
  std::map<int, std::pair<u64, u64>> by_stage = stage_totals_;
  for (std::size_t b = 0; b < stage_ids_.size(); ++b) {
    auto& [exec, skip] = by_stage[stage_ids_[b]];
    exec += stage_exec_[b];
    skip += stage_skip_[b];
  }
  p.stages.reserve(by_stage.size());
  for (const auto& [stage, counts] : by_stage) {
    p.stages.push_back(
        SchedulerProfile::Stage{stage, counts.first, counts.second});
  }
  return p;
}

void Scheduler::save_state(snap::Writer& w) {
  w.io(now_);
  w.io(ticks_executed_);
  w.io(ticks_skipped_);
  w.io(ff_cycles_);
  w.io(ff_events_);
  w.io(wheel_depth_max_);
  w.io(wheel_purges_);
  w.io(ff_gap_log2_);
  // Per-stage counters are saved merged (live vectors + flushed totals) so
  // the restored profile equals the saving scheduler's profile() view.
  std::map<int, std::pair<u64, u64>> by_stage = stage_totals_;
  for (std::size_t b = 0; b < stage_ids_.size(); ++b) {
    auto& [exec, skip] = by_stage[stage_ids_[b]];
    exec += stage_exec_[b];
    skip += stage_skip_[b];
  }
  w.io(by_stage);
}

void Scheduler::load_state(snap::Reader& r) {
  r.io(now_);
  r.io(ticks_executed_);
  r.io(ticks_skipped_);
  r.io(ff_cycles_);
  r.io(ff_events_);
  r.io(wheel_depth_max_);
  r.io(wheel_purges_);
  r.io(ff_gap_log2_);
  r.io(stage_totals_);
  std::fill(stage_exec_.begin(), stage_exec_.end(), 0);
  std::fill(stage_skip_.begin(), stage_skip_.end(), 0);
  next_wake_ = now_;
}

bool Scheduler::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  const Cycle limit = now_ + max_cycles;
  while (now_ < limit) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace drmp::sim
