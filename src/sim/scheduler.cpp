#include "sim/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace drmp::sim {

void Clockable::wake_self() noexcept {
  if (wake_sched_ != nullptr) wake_sched_->wake_component(wake_index_);
}

void Scheduler::add(Clockable& c, std::string name, int stage) {
  entries_.push_back(Entry{&c, stage});
  names_.push_back(std::move(name));
  batch_dirty_ = true;
}

void Scheduler::freeze() {
  // Stable sort keeps registration order within a stage, so an all-default
  // scheduler executes in exact registration order (the legacy contract).
  std::vector<Entry> ordered = entries_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Entry& a, const Entry& b) { return a.stage < b.stage; });
  batch_.clear();
  batch_.reserve(ordered.size());
  for (const Entry& e : ordered) batch_.push_back(e.component);
  // Bind the wake route: wake_self() must reach this scheduler's active-set
  // bookkeeping. A component lives in exactly one scheduler in this code
  // base; re-freezing (or re-registering elsewhere) rebinds it.
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    batch_[i]->wake_sched_ = this;
    batch_[i]->wake_index_ = static_cast<u32>(i);
  }
  batch_dirty_ = false;
}

void Scheduler::step() {
  if (batch_dirty_) freeze();
  for (Clockable* c : batch_) {
    c->tick();
  }
  ++now_;
}

void Scheduler::run_cycles(Cycle n) {
  for (Cycle i = 0; i < n; ++i) {
    step();
  }
}

void Scheduler::run_cycles_batched_every_tick(Cycle n) {
  // The pre-quiescence hot path: the component array lives in locals. The
  // member clock still advances every cycle so components that sample now()
  // mid-tick observe the same values as under run_cycles.
  Clockable* const* comps = batch_.data();
  const std::size_t count = batch_.size();
  for (Cycle i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < count; ++k) {
      comps[k]->tick();
    }
    ++now_;
  }
  ticks_executed_ += n * count;
  next_wake_ = now_;
}

void Scheduler::enter_batched() {
  in_batched_run_ = true;
  in_cycle_ = false;
  cursor_ = kNoCursor;
  states_.assign(batch_.size(), CompState{});
  wheel_ = {};
  active_.clear();
  awake_lazy_ = 0;
  // Entry partition: every component is fully caught up here, so bounds are
  // relative to the next cycle to execute (now_).
  for (u32 i = 0; i < batch_.size(); ++i) {
    CompState& st = states_[i];
    st.eager = batch_[i]->global_skip_only();
    if (st.eager) {
      active_.insert(i);  // Eager components stay in the tick loop.
      continue;
    }
    const Cycle q = batch_[i]->quiescent_for();
    if (q == 0) {
      active_.insert(i);
      ++awake_lazy_;
    } else {
      st.sleeping = true;
      st.slept_from = now_;
      if (q != Clockable::kIdleForever && q <= Clockable::kIdleForever - now_) {
        wheel_.push(WheelEntry{now_ + q, i, st.gen});
      }
    }
  }
}

void Scheduler::exit_batched() {
  // Settle: every sleeping component is caught up through the last executed
  // cycle, so introspection (stats, counters, internal clocks) between runs
  // is indistinguishable from the every-tick path.
  for (u32 i = 0; i < states_.size(); ++i) {
    CompState& st = states_[i];
    if (!st.sleeping) continue;
    const Cycle owed = now_ - st.slept_from;
    if (owed > 0) {
      batch_[i]->skip_idle(owed);
      ticks_skipped_ += owed;
    }
    st.sleeping = false;
    ++st.gen;
  }
  in_batched_run_ = false;
  // Lane-level wake hint for MultiScheduler: when the whole scheduler is
  // quiescent, report the earliest cycle a real tick could occur.
  Cycle min_q = Clockable::kIdleForever;
  for (Clockable* c : batch_) {
    const Cycle q = c->quiescent_for();
    min_q = std::min(min_q, q);
    if (min_q == 0) break;
  }
  if (min_q == 0 || batch_.empty()) {
    next_wake_ = now_;
  } else if (min_q == Clockable::kIdleForever || min_q > Clockable::kIdleForever - now_) {
    next_wake_ = Clockable::kIdleForever;
  } else {
    next_wake_ = now_ + min_q;
  }
}

void Scheduler::wake_component(u32 idx) {
  if (!in_batched_run_) {
    // External input between runs: the published lane hint no longer
    // proves quiescence (the next batched entry re-partitions anyway).
    next_wake_ = now_;
    return;
  }
  CompState& st = states_[idx];
  if (!st.sleeping) return;
  st.sleeping = false;
  ++st.gen;  // Any wake-wheel entry for this sleep period is now stale.
  // Catch-up window: while mid-cycle, a target whose tick slot has not yet
  // passed this cycle owes [slept_from, now_) and then really ticks at now_
  // (the legacy path would observe the just-delivered input this cycle); a
  // target whose slot already passed owes [slept_from, now_] and resumes at
  // now_+1 — exactly when legacy would first see the input.
  Cycle owed = now_ - st.slept_from;
  if (in_cycle_ && idx <= cursor_) ++owed;
  if (owed > 0) {
    batch_[idx]->skip_idle(owed);
    ticks_skipped_ += owed;
  }
  active_.insert(idx);
  ++awake_lazy_;
}

void Scheduler::run_cycles_batched(Cycle n) {
  if (batch_dirty_) freeze();
  if (!idle_skip_ || batch_.empty()) {
    run_cycles_batched_every_tick(n);
    return;
  }
  const Cycle limit = now_ + n;
  enter_batched();
  while (now_ < limit) {
    // Wake-wheel: scheduled bounds that expire this cycle.
    while (!wheel_.empty() && wheel_.top().wake_at <= now_) {
      const WheelEntry e = wheel_.top();
      wheel_.pop();
      if (states_[e.index].sleeping && states_[e.index].gen == e.gen) {
        wake_component(e.index);
      }
    }
    // Globally-quiescent gap: nothing but eager components is awake. Fast-
    // forward to the earliest wake (or the nearest eager event), bulk-
    // accounting the gap into the eager components immediately so their
    // externally visible clocks are exact at every cycle anything runs.
    if (awake_lazy_ == 0) {
      Cycle gap = limit - now_;
      if (!wheel_.empty()) gap = std::min(gap, wheel_.top().wake_at - now_);
      for (const u32 idx : active_) {
        gap = std::min(gap, batch_[idx]->quiescent_for());
        if (gap == 0) break;
      }
      if (gap > 0) {
        for (const u32 idx : active_) {
          batch_[idx]->skip_idle(gap);
        }
        ticks_skipped_ += gap * active_.size();
        now_ += gap;
        ff_cycles_ += gap;
        continue;
      }
    }
    // One real cycle over the awake set, in frozen (stage) order. std::set
    // iteration tolerates mid-loop insertion by wake_component: an index
    // greater than the cursor is picked up later in this same pass.
    in_cycle_ = true;
    for (auto it = active_.begin(); it != active_.end();) {
      const u32 idx = *it;
      cursor_ = idx;
      Clockable* c = batch_[idx];
      c->tick();
      ++ticks_executed_;
      CompState& st = states_[idx];
      if (!st.eager) {
        const Cycle q = c->quiescent_for();
        if (q > 0) {
          st.sleeping = true;
          ++st.gen;
          st.slept_from = now_ + 1;
          if (q != Clockable::kIdleForever && q < Clockable::kIdleForever - now_ - 1) {
            wheel_.push(WheelEntry{now_ + 1 + q, idx, st.gen});
          }
          it = active_.erase(it);
          --awake_lazy_;
          continue;
        }
      }
      ++it;
    }
    in_cycle_ = false;
    cursor_ = kNoCursor;
    ++now_;
  }
  exit_batched();
}

bool Scheduler::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  const Cycle limit = now_ + max_cycles;
  while (now_ < limit) {
    if (done()) return true;
    step();
  }
  return done();
}

}  // namespace drmp::sim
