#include "sim/stats.hpp"

// All collectors are header-only; this TU anchors the build target.
namespace drmp::sim {
namespace {
[[maybe_unused]] const BusyCounter kAnchor{};
}
}  // namespace drmp::sim
