// Checkpoint/resume of full simulation state (ROADMAP "fleet scale-out").
//
// A snapshot is a versioned, CRC-guarded binary file:
//
//   "DRMPSNAP"  8-byte magic
//   u32         format version (kSnapshotVersion; mismatch = refuse, never guess)
//   u64         payload length
//   payload     nested length-prefixed named records (below)
//   u32         CRC-32 over the payload
//
// The payload is a tree of *named records*: [u32 name_len][name bytes]
// [u64 body_len][body]. Every component writes its state inside its own
// record, so a reader that meets a record it does not expect fails loudly
// (UnknownRecordError names it) instead of silently misparsing, and a record
// whose body is not consumed exactly raises RecordOverrunError — no partial
// restores, ever.
//
// Components implement the Snapshottable contract as a matched pair
// save_state(Writer&) / load_state(Reader&), usually through one shared
//   template <class Ar> void persist(Ar& ar) { ar.io(field_); ... }
// so the field list cannot drift between the two directions. Writer::io
// serializes, Reader::io restores; both speak fixed-width little-endian so
// snapshots are stable across hosts.
//
// Snapshots are legal only at quiescent lockstep round edges — exactly where
// the lax-sync causality argument already holds (docs/ARCHITECTURE.md,
// "Checkpoint/resume") — which is why no scheduler wake bookkeeping appears
// in any record: Scheduler::run_cycles_batched rebuilds it from component
// quiescence bounds on entry.
#pragma once

#include <array>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace drmp::sim::snap {

inline constexpr char kMagic[8] = {'D', 'R', 'M', 'P', 'S', 'N', 'A', 'P'};
inline constexpr u32 kSnapshotVersion = 1;

// ---- Typed rejection errors (no partial restores) ----

/// Base of every snapshot rejection; tests and tools catch this.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BadMagicError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

class BadVersionError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

class CrcMismatchError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// A record name in the stream does not match what the reader expected —
/// an unknown (or reordered) component. Names both sides.
class UnknownRecordError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

/// A read crossed a record's length prefix, or a record body was left
/// partially consumed. Names the offending record.
class RecordOverrunError : public SnapshotError {
 public:
  using SnapshotError::SnapshotError;
};

// ---- Writer ----

class Writer {
 public:
  static constexpr bool kLoading = false;

  /// Opens a named length-prefixed record; every begin needs a matching end.
  void begin_record(std::string_view name);
  void end_record();

  // Primitive io: fixed-width little-endian regardless of host.
  template <class T>
    requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
  void io(T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      const u8 b = v ? 1 : 0;
      put(&b, 1);
    } else if constexpr (std::is_same_v<T, double>) {
      u64 bits;
      std::memcpy(&bits, &v, sizeof(bits));
      put_le(bits, 8);
    } else if constexpr (std::is_enum_v<T>) {
      auto u = static_cast<std::underlying_type_t<T>>(v);
      io(u);
    } else {
      put_le(static_cast<u64>(static_cast<std::make_unsigned_t<T>>(v)), sizeof(T));
    }
  }

  void io(std::string& s) {
    u64 n = s.size();
    io(n);
    put(s.data(), s.size());
  }

  void io(Bytes& b) {
    u64 n = b.size();
    io(n);
    put(b.data(), b.size());
  }

  template <class T>
  void io(std::vector<T>& v) {
    u64 n = v.size();
    io(n);
    for (T& e : v) io(e);
  }

  void io(std::vector<bool>& v) {
    u64 n = v.size();
    io(n);
    for (std::size_t i = 0; i < v.size(); ++i) {
      bool b = v[i];
      io(b);
    }
  }

  template <class T>
  void io(std::deque<T>& v) {
    u64 n = v.size();
    io(n);
    for (T& e : v) io(e);
  }

  template <class T, std::size_t N>
  void io(std::array<T, N>& v) {
    for (T& e : v) io(e);
  }

  template <class T>
  void io(std::optional<T>& o) {
    bool has = o.has_value();
    io(has);
    if (has) io(*o);
  }

  template <class A, class B>
  void io(std::pair<A, B>& p) {
    io(p.first);
    io(p.second);
  }

  template <class K, class V>
  void io(std::map<K, V>& m) {
    u64 n = m.size();
    io(n);
    for (auto& [k, v] : m) {
      K key = k;  // map keys are const in place.
      io(key);
      io(v);
    }
  }

  /// Any type carrying its own `template <class Ar> void persist(Ar&)`.
  template <class T>
    requires requires(T& t, Writer& w) { t.persist(w); }
  void io(T& t) {
    t.persist(*this);
  }

  /// Finishes the envelope and writes it atomically: the bytes land in
  /// `path + ".tmp"` first and are renamed over `path`, so a crash mid-write
  /// leaves the previous complete snapshot in place.
  void write_file(const std::string& path) const;

  /// The framed envelope (magic/version/length/payload/CRC) as bytes.
  Bytes envelope() const;

 private:
  void put(const void* p, std::size_t n);
  void put_le(u64 v, std::size_t nbytes);

  Bytes buf_;
  std::vector<std::size_t> open_;  ///< Offsets of body-length fields to patch.
};

// ---- Reader ----

class Reader {
 public:
  static constexpr bool kLoading = true;

  /// Loads and validates the envelope (magic, version, length, CRC); throws
  /// the matching typed error before any component sees a byte.
  explicit Reader(const std::string& path);
  /// Same validation over in-memory bytes (malformed-snapshot tests).
  explicit Reader(Bytes envelope);

  /// Enters the next record, which must carry exactly `name`.
  void expect(std::string_view name);
  /// Leaves the current record; its body must be fully consumed.
  void leave();

  template <class T>
    requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
  void io(T& v) {
    if constexpr (std::is_same_v<T, bool>) {
      u8 b = 0;
      get(&b, 1);
      v = b != 0;
    } else if constexpr (std::is_same_v<T, double>) {
      const u64 bits = get_le(8);
      std::memcpy(&v, &bits, sizeof(v));
    } else if constexpr (std::is_enum_v<T>) {
      std::underlying_type_t<T> u{};
      io(u);
      v = static_cast<T>(u);
    } else {
      using U = std::make_unsigned_t<T>;
      v = static_cast<T>(static_cast<U>(get_le(sizeof(T))));
    }
  }

  void io(std::string& s) {
    u64 n = 0;
    io(n);
    s.resize(checked_count(n, 1));
    get(s.data(), s.size());
  }

  void io(Bytes& b) {
    u64 n = 0;
    io(n);
    b.resize(checked_count(n, 1));
    get(b.data(), b.size());
  }

  template <class T>
  void io(std::vector<T>& v) {
    u64 n = 0;
    io(n);
    v.clear();
    v.resize(checked_count(n, 1));
    for (T& e : v) io(e);
  }

  void io(std::vector<bool>& v) {
    u64 n = 0;
    io(n);
    v.assign(checked_count(n, 1), false);
    for (std::size_t i = 0; i < v.size(); ++i) {
      bool b = false;
      io(b);
      v[i] = b;
    }
  }

  template <class T>
  void io(std::deque<T>& v) {
    u64 n = 0;
    io(n);
    v.clear();
    for (u64 i = 0; i < n; ++i) {
      check_remaining(1);
      io(v.emplace_back());
    }
  }

  template <class T, std::size_t N>
  void io(std::array<T, N>& v) {
    for (T& e : v) io(e);
  }

  template <class T>
  void io(std::optional<T>& o) {
    bool has = false;
    io(has);
    if (has) {
      io(o.emplace());
    } else {
      o.reset();
    }
  }

  template <class A, class B>
  void io(std::pair<A, B>& p) {
    io(p.first);
    io(p.second);
  }

  template <class K, class V>
  void io(std::map<K, V>& m) {
    u64 n = 0;
    io(n);
    m.clear();
    for (u64 i = 0; i < n; ++i) {
      check_remaining(1);
      K key{};
      io(key);
      io(m[key]);
    }
  }

  template <class T>
    requires requires(T& t, Reader& r) { t.persist(r); }
  void io(T& t) {
    t.persist(*this);
  }

  /// True once the payload (or the current record body) is fully consumed.
  bool at_end() const noexcept;

 private:
  void validate_envelope(const Bytes& file);
  void get(void* p, std::size_t n);
  u64 get_le(std::size_t nbytes);
  /// Element-count sanity: a count whose minimal encoding would overrun the
  /// current bound is corrupt — reject before allocating.
  std::size_t checked_count(u64 n, std::size_t elem_min_bytes);
  void check_remaining(std::size_t n);
  std::size_t bound() const noexcept;
  std::string where() const;

  Bytes payload_;
  std::size_t pos_ = 0;
  struct Rec {
    std::string name;
    std::size_t end;
  };
  std::vector<Rec> stack_;
};

/// Direction-agnostic record scoping, so one shared persist body can nest
/// named records: maps to begin_record/end_record when writing and to the
/// strict expect/leave pair when reading.
template <class Ar>
void open_record(Ar& ar, std::string_view name) {
  if constexpr (Ar::kLoading) {
    ar.expect(name);
  } else {
    ar.begin_record(name);
  }
}

template <class Ar>
void close_record(Ar& ar) {
  if constexpr (Ar::kLoading) {
    ar.leave();
  } else {
    ar.end_record();
  }
}

/// The Snapshottable contract: anything that owns mutable simulation state
/// restorable at a quiescent round edge. Most components implement the pair
/// directly (no virtual dispatch needed along ownership trees); the
/// interface exists for containers that hold components behind one type.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual void save_state(Writer& w) = 0;
  virtual void load_state(Reader& r) = 0;
};

}  // namespace drmp::sim::snap
