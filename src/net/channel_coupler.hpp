// ChannelCoupler — cross-cell carrier-event exchange for co-channel cells.
//
// Cells are independent clock domains (MultiScheduler lanes), but cells of
// one coupling group share spectrum: a transmission in cell A is energy in
// cell B's band. The coupler forwards every begin_tx on a member medium into
// each co-channel member that hears it, as a phy foreign-carrier image
// (ContendedMedium::begin_remote_tx) shifted by the inter-cell
// propagation+detection latency D — the lumped time for A's first bit to
// reach B and trip B's energy detector.
//
// D is also the *audibility lookahead horizon* of Graphite-style lax
// synchronization: anything cell A does at time t is physically invisible
// to cell B before t + D, so B's lane may free-run up to A's clock + D
// without missing an interaction. The scenario engine clamps the lockstep
// stride to min(D) over connected groups; with stride W <= D, an event
// generated anywhere inside a round ending at edge T has effects at
// >= (T - W) + D >= T, so delivering it at T — through
// MultiScheduler::set_round_hook, on the calling thread, with every lane
// parked exactly at T — is never late. Injection wakes the target lane
// through the quiescence contract (wake edges, not per-cycle polling): a
// fully-quiescent, round-skipped lane resumes the moment foreign carrier is
// scheduled into it.
//
// Two delivery modes, pinned digest-identical by tests/multicell_test.cpp:
//   * lax (default)  — begin_tx events queue in per-medium outboxes (each
//     written only by its own lane's thread) and drain at round edges. The
//     fleet hot path: lanes keep skip/lockstep freedom inside the horizon.
//   * immediate      — events inject synchronously from inside begin_tx.
//     The reference coupling: every member cell lives on ONE shared
//     scheduler, so immediate injection is the conventional conservative
//     simulation the lax path must reproduce bit-for-bit.
// Equality holds because every observable the image touches (perceived
// carrier, occupancy, jam verdicts, quiescence bounds) is computed from the
// image's absolute air window by interval arithmetic, never from the
// injection moment — see docs/MULTICELL.md for the full argument.
//
// The inter-cell AudibilityMatrix is *cell-granular*: reach.hears(B, A)
// decides whether cell B's medium receives cell A's images at all (spatial
// reuse: far-apart cells on one channel never interact). Per-station
// audibility stays a per-cell concern; images are omnidirectional within
// the hearing cell. A reach with no off-diagonal hearing makes the group
// fully isolated — the engine skips coupler construction entirely and such
// runs are bit-identical to uncoupled fleets (pinned).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "net/audibility.hpp"
#include "net/contended_medium.hpp"

namespace drmp::net {

class ChannelCoupler {
 public:
  struct Params {
    /// Inter-cell propagation+detection latency D in architecture cycles
    /// (>= 1): images land [start + D, end + D). Doubles as the lax-sync
    /// lookahead horizon — the engine clamps the lockstep stride to it.
    Cycle latency = 1;
    /// Cell-granular reach over group-member indices: hears(listener_cell,
    /// tx_cell) gates forwarding. Trivial = every member hears every other.
    AudibilityMatrix reach;
    /// Inject synchronously from inside begin_tx (reference mode; members
    /// must share one scheduler) instead of queueing for round edges.
    bool immediate = false;
  };

  explicit ChannelCoupler(Params p);

  ChannelCoupler(const ChannelCoupler&) = delete;
  ChannelCoupler& operator=(const ChannelCoupler&) = delete;

  /// Registers member `member`'s medium for protocol band `band` and
  /// installs its on_tx hook. Members with several enabled modes attach one
  /// port per band; images only ever flow between ports of the same band.
  /// Capture must be off on every attached medium (order-dependent
  /// verdicts; begin_remote_tx enforces it).
  void attach(std::size_t member, std::size_t band, ContendedMedium& medium);

  /// Round-edge delivery (lax mode): drains every port's outbox, in port
  /// attach order, into each same-band port whose member hears the source
  /// cell. Call from MultiScheduler::set_round_hook with all lanes parked
  /// at the edge; the no-op in immediate mode keeps one engine code path.
  void exchange();

  /// Replaces the cell-granular reach matrix (CouplingSpec::reach_script).
  /// Legal only at a lockstep round edge, *after* exchange() has drained the
  /// outboxes: forward() reads the reach at delivery time, so with revisions
  /// pinned to edges the reach is constant across each round and the lax
  /// (drain-at-edge) and immediate (forward-at-generation) paths read the
  /// same matrix for every event — digest equality survives the revision.
  /// No-op (not an epoch) when the matrix is unchanged.
  void set_reach(const AudibilityMatrix& reach);
  /// Reach revisions applied so far.
  u64 reach_epoch() const noexcept { return reach_epoch_; }

  /// The lax-sync lookahead horizon (== Params::latency).
  Cycle horizon() const noexcept { return params_.latency; }
  std::size_t port_count() const noexcept { return ports_.size(); }
  /// Events forwarded into member media across all ports so far.
  u64 forwarded() const noexcept { return forwarded_; }

  /// Checkpoint support (sim/checkpoint.hpp): only the forward counter —
  /// snapshots land at round edges, where exchange() has already drained
  /// every outbox, so the ports carry no logical state.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(forwarded_);
  }

 private:
  struct Pending {
    Cycle start;
    Cycle end;
    int source;
  };
  struct Port {
    std::size_t member;
    std::size_t band;
    ContendedMedium* medium;
    /// Lax mode: events this port's begin_tx generated since the last
    /// exchange. Single writer (the owning lane's thread); read and cleared
    /// on the calling thread between rounds — the round barrier orders it.
    std::vector<Pending> outbox;
  };

  void forward(const Port& from, Cycle start, Cycle end, int source);

  Params params_;
  std::vector<Port> ports_;
  u64 forwarded_ = 0;
  /// Not persisted: the engine re-applies due reach revisions on resume, so
  /// counter and matrix re-derive and coupler snapshot layouts stay stable.
  u64 reach_epoch_ = 0;
};

}  // namespace drmp::net
