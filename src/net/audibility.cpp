#include "net/audibility.hpp"

#include <cstdlib>

namespace drmp::net {

namespace {

[[noreturn]] void throw_index(const char* what, std::size_t idx, std::size_t n) {
  throw AudibilityError(std::string("AudibilityMatrix: ") + what + " index " +
                        std::to_string(idx) + " out of range for n=" +
                        std::to_string(n));
}

}  // namespace

void AudibilityMatrix::set(std::size_t listener, std::size_t transmitter, bool v) {
  if (listener >= n) throw_index("listener", listener, n);
  if (transmitter >= n) throw_index("transmitter", transmitter, n);
  u8& slot = bits[listener * n + transmitter];
  const u8 next = v ? 1 : 0;
  if (slot == next) return;
  if (next == 0) {
    ++zero_bits_;
  } else {
    --zero_bits_;
  }
  slot = next;
}

void AudibilityMatrix::hide_pair(std::size_t a, std::size_t b) {
  set(a, b, false);
  set(b, a, false);
}

AudibilityMatrix AudibilityMatrix::full(std::size_t n) {
  AudibilityMatrix m;
  m.n = n;
  m.bits.assign(n * n, 1);
  m.zero_bits_ = 0;
  return m;
}

AudibilityMatrix AudibilityMatrix::from_bits(std::size_t n, std::vector<u8> bits) {
  if (bits.size() != n * n) {
    throw AudibilityError("AudibilityMatrix: from_bits size " +
                          std::to_string(bits.size()) + " != n*n for n=" +
                          std::to_string(n));
  }
  AudibilityMatrix m;
  m.n = n;
  m.bits = std::move(bits);
  m.zero_bits_ = 0;
  for (u8& b : m.bits) {
    b = b ? 1 : 0;
    if (b == 0) ++m.zero_bits_;
  }
  return m;
}

AudibilityMatrix AudibilityMatrix::hidden_pair(std::size_t n, std::size_t a,
                                               std::size_t b) {
  if (a == b) {
    throw AudibilityError("AudibilityMatrix: hidden_pair requires a != b (got " +
                          std::to_string(a) + ")");
  }
  AudibilityMatrix m = full(n);
  m.hide_pair(a, b);
  return m;
}

AudibilityMatrix AudibilityMatrix::asymmetric_pair(std::size_t n, std::size_t heard,
                                                   std::size_t deaf) {
  if (heard == deaf) {
    throw AudibilityError(
        "AudibilityMatrix: asymmetric_pair requires heard != deaf (got " +
        std::to_string(heard) + ")");
  }
  AudibilityMatrix m = full(n);
  m.set(deaf, heard, false);  // deaf does not hear heard.
  return m;
}

AudibilityMatrix AudibilityMatrix::chain(std::size_t n) {
  AudibilityMatrix m = full(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t d = i > j ? i - j : j - i;
      if (d > 1) m.set(i, j, false);
    }
  }
  return m;
}

}  // namespace drmp::net
