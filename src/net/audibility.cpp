#include "net/audibility.hpp"

#include <cstdlib>

namespace drmp::net {

bool AudibilityMatrix::all_ones() const noexcept {
  for (u8 b : bits) {
    if (b == 0) return false;
  }
  return true;
}

void AudibilityMatrix::set(std::size_t listener, std::size_t transmitter, bool v) {
  if (listener >= n || transmitter >= n) return;
  bits[listener * n + transmitter] = v ? 1 : 0;
}

void AudibilityMatrix::hide_pair(std::size_t a, std::size_t b) {
  set(a, b, false);
  set(b, a, false);
}

AudibilityMatrix AudibilityMatrix::full(std::size_t n) {
  AudibilityMatrix m;
  m.n = n;
  m.bits.assign(n * n, 1);
  return m;
}

AudibilityMatrix AudibilityMatrix::hidden_pair(std::size_t n, std::size_t a,
                                               std::size_t b) {
  AudibilityMatrix m = full(n);
  m.hide_pair(a, b);
  return m;
}

AudibilityMatrix AudibilityMatrix::asymmetric_pair(std::size_t n, std::size_t heard,
                                                   std::size_t deaf) {
  AudibilityMatrix m = full(n);
  if (heard != deaf) m.set(deaf, heard, false);  // deaf does not hear heard.
  return m;
}

AudibilityMatrix AudibilityMatrix::chain(std::size_t n) {
  AudibilityMatrix m = full(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t d = i > j ? i - j : j - i;
      if (d > 1) m.set(i, j, false);
    }
  }
  return m;
}

}  // namespace drmp::net
