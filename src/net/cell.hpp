// net::Cell — one radio cell of a fleet scenario, fully assembled.
//
// A cell owns one sim::Scheduler (its clock domain) and everything clocked by
// it: per-mode media, N full DRMP devices, scripted far ends and per-station
// traffic generators. Cells share no Clockables with each other, so the
// scenario engine can advance them as MultiScheduler lanes (serial or on
// worker threads) with the bit-identical digest guarantee intact. Cells of a
// co-channel coupling group still interact *physically*: net::ChannelCoupler
// mirrors their transmissions into each other's media at lockstep round
// edges (or immediately, when the group shares one scheduler through the
// external_sched constructor argument — the reference coupling mode). See
// docs/MULTICELL.md.
//
// Two assemblies, selected by CellSpec::topology:
//   * kPointToPoint — the PR-1 shape: one station, a private collision-free
//     phy::Medium per mode, a ScriptedPeer as the far end.
//   * kSharedMedium — the contention shape: one net::ContendedMedium per
//     mode carries every station. With an access point, stations uplink to a
//     scripted AP that ACKs data and answers RTS with CTS; without one
//     (exactly two stations) the stations are mirrored onto each other and
//     their own Event Handler + AckRfu paths acknowledge — the twodevice
//     integration topology as a first-class scenario. Shared cells re-derive
//     cell-consistent identities (addresses, piconet ids, CIDs, staggered
//     TDMA slots) from (cell index, station index), so any station list is
//     safe to drop into a shared cell.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "drmp/device.hpp"
#include "mac/link_mgr.hpp"
#include "mac/traffic_gen.hpp"
#include "net/contended_medium.hpp"
#include "net/topology_driver.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sched_recorder.hpp"
#include "phy/channel.hpp"
#include "scenario/fleet_stats.hpp"
#include "scenario/scenario_spec.hpp"
#include "sim/scheduler.hpp"

namespace drmp::net {

class Cell {
 public:
  /// Assembles the cell. `first_station_id` is the 1-based fleet-global id
  /// of the cell's first station (ids are contiguous within a cell); PRNG
  /// streams derive from (scenario_seed, global station id, mode) so a
  /// station's behaviour is invariant to fleet composition around its cell.
  /// `external_sched` registers every component on a caller-owned scheduler
  /// instead of a private one — the reference coupling mode, where every
  /// cell of a co-channel group shares one clock domain so cross-cell
  /// injection is conventionally causal; the caller must outlive the cell.
  /// `trace.enabled` attaches a per-cell obs::FlightRecorder: one track per
  /// station and per medium band, wired into every protocol-edge site before
  /// the first cycle runs, so the event stream is a pure function of the
  /// scenario (not of when tracing was switched on).
  Cell(const scenario::CellSpec& spec,
       const std::array<scenario::ChannelSpec, kNumModes>& fleet_channel,
       u64 scenario_seed, std::size_t cell_index, int first_station_id,
       sim::Scheduler* external_sched = nullptr,
       const scenario::TraceSpec& trace = {});
  ~Cell();

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  sim::Scheduler& scheduler() { return *sched_; }
  bool shared() const noexcept {
    return spec_.topology == scenario::Topology::kSharedMedium;
  }
  std::size_t station_count() const noexcept { return stations_.size(); }
  DrmpDevice& device(std::size_t i);
  phy::Medium* medium(Mode m) { return media_[index(m)].get(); }

  /// Every traffic generator exhausted and all completions reported — the
  /// MultiScheduler early-exit predicate for this lane.
  bool drained() const;

  /// Appends one DeviceStats per station (activity-weighted power estimates
  /// folded in) and, for shared-medium cells, one CellStats.
  void collect(std::vector<scenario::DeviceStats>& devices,
               std::vector<scenario::CellStats>& cells) const;

  /// Folds this cell's counters into `fleet`, twice: namespaced under
  /// `cell<n>/station<id>/` for the per-device breakdown, and unprefixed so
  /// the same names aggregate into fleet-wide totals. `per_station = false`
  /// (the fold_device_stats accounting) keeps the fleet and per-cell totals
  /// but drops the per-station namespace — O(cells) registry entries.
  void export_metrics(obs::MetricsRegistry& fleet, bool per_station = true) const;

  /// The cell's flight recorder; null unless constructed with tracing on.
  const obs::FlightRecorder* recorder() const noexcept { return recorder_.get(); }

  /// The cell's mobility driver; null unless CellSpec::mobility is enabled.
  const TopologyDriver* topology() const noexcept { return driver_.get(); }

  // ---- Checkpoint support (sim/checkpoint.hpp) ----
  /// Serializes the cell's mutable state: the channel-corruption PRNGs, the
  /// per-mode media (virtual dispatch covers the contended backend), the
  /// scripted access points, and one record per station (its completion
  /// counters, scripted peers, traffic generators and full DrmpDevice).
  /// Legal only at a quiescent lockstep round edge; the cell's scheduler is
  /// checkpointed by the scenario engine (shared clock domains save once).
  void save_state(sim::snap::Writer& w);
  void load_state(sim::snap::Reader& r);

 private:
  struct Station {
    int station_id = 0;  ///< Fleet-global, 1-based.
    u16 track = 0;       ///< Flight-recorder track (valid when recorder_).
    std::unique_ptr<DrmpDevice> device;
    std::array<std::unique_ptr<phy::ScriptedPeer>, kNumModes> peers{};
    std::array<std::unique_ptr<mac::TrafficGen>, kNumModes> gens{};
    /// Association/roaming/rate-adaptation manager (mobility cells with
    /// MobilitySpec::associate; null otherwise). Routes Mode A completions.
    std::unique_ptr<mac::LinkMgr> link;
    // Completion counters fed by the device callbacks.
    std::array<u32, kNumModes> completed{};
    std::array<u32, kNumModes> tx_ok{};
    std::array<u64, kNumModes> retries{};
  };

  void build_media(const std::array<scenario::ChannelSpec, kNumModes>& fleet_channel,
                   u64 scenario_seed);
  void build_station(std::size_t local_index, u64 scenario_seed);
  /// Rewrites a station config's identities for shared-medium membership.
  DrmpConfig shared_identity(const DrmpConfig& cfg, std::size_t local_index) const;
  template <class Ar>
  void persist_cell(Ar& ar);
  scenario::DevicePower estimate_station_power(const Station& st) const;

  // Held by value: a Cell must stay usable standalone (tests, tools) without
  // tying its lifetime to whoever built the spec.
  scenario::CellSpec spec_;
  std::size_t cell_index_;
  int first_station_id_;
  std::unique_ptr<sim::Scheduler> owned_sched_;  ///< Null with an external one.
  sim::Scheduler* sched_ = nullptr;
  // Created before any component, so track registration order (media first,
  // then stations) is deterministic. The SchedRecorder is attached only to
  // an owned scheduler — on a shared external clock domain, per-cell exec
  // attribution would be ambiguous.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::SchedRecorder> sched_rec_;
  /// Mobility driver (CellSpec::mobility). Built before the media so they
  /// take its cycle-0 derived matrix as their audibility at construction.
  std::unique_ptr<TopologyDriver> driver_;
  std::array<std::unique_ptr<phy::Medium>, kNumModes> media_{};
  std::array<u64, kNumModes> channel_rng_{};
  std::array<std::unique_ptr<phy::ScriptedPeer>, kNumModes> ap_{};
  std::vector<std::unique_ptr<Station>> stations_;
};

}  // namespace drmp::net
