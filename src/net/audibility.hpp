// AudibilityMatrix — per-station reachability on a shared medium.
//
// Real radio cells are not cliques: "station A hears B but not C" is the
// hidden-terminal regime that separates toy shared-medium models from
// credible ones (cf. Abadal et al., "Medium Access Control in Wireless
// Network-on-Chip: A Context Analysis"). The matrix answers one question —
// does listener i hear transmitter j — and net::ContendedMedium evaluates
// carrier sense, collision detection, garbled delivery and capture per
// listener against it.
//
// The default-constructed matrix is *trivial* (n == 0): every listener hears
// every transmitter, and the medium runs its original single-viewpoint code
// paths untouched, so pre-existing scenarios keep bit-identical digests.
// A matrix of explicit all-ones exercises the per-listener machinery and
// must (and does — pinned by tests) reproduce the same digests.
//
// Indices are the cell's local station indices (0-based). Participants
// outside the matrix — the scripted access point, point-to-point peers,
// passive test sinks — are *omnidirectional*: they hear everyone and are
// heard by everyone, which is exactly the classic hidden-node setup where
// two mutually-deaf stations both reach the AP. The diagonal must stay 1: a
// station always "hears" its own past transmissions (its perceived-carrier
// tail), and the half-duplex transmit gates rely on that.
//
// Mutation contract: all writes go through set()/hide_pair() (or the
// factories), which keep the cached zero-bit count coherent so all_ones()
// is O(1). Out-of-range indices in set()/hide_pair() and the factories
// throw AudibilityError — a silently-ignored bad index produces a topology
// that looks valid but is not the one the scenario asked for.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace drmp::net {

/// Typed error for malformed audibility topologies (bad indices, size
/// mismatches). scenario::ScenarioSpec validation surfaces these with cell
/// context attached.
class AudibilityError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct AudibilityMatrix {
  /// Stations covered; 0 = trivial (all-ones, zero-overhead fast path).
  std::size_t n = 0;
  /// Row-major n*n: bits[i*n + j] != 0 means listener i hears transmitter j.
  /// Read-only outside this struct: mutate through set()/hide_pair() so the
  /// cached all_ones() count stays coherent.
  std::vector<u8> bits;

  bool trivial() const noexcept { return n == 0; }
  /// Out-of-range indices are omnidirectional participants: always heard.
  bool hears(std::size_t listener, std::size_t transmitter) const noexcept {
    if (trivial() || listener >= n || transmitter >= n) return true;
    return bits[listener * n + transmitter] != 0;
  }
  /// True when every in-range pair hears each other (explicit all-ones).
  /// O(1): the zero-bit count is maintained at construction/mutation time.
  bool all_ones() const noexcept { return zero_bits_ == 0; }

  /// Throws AudibilityError when listener or transmitter is out of range.
  void set(std::size_t listener, std::size_t transmitter, bool v);
  /// Symmetric helper: neither station hears the other. Validates like set().
  void hide_pair(std::size_t a, std::size_t b);

  bool operator==(const AudibilityMatrix&) const = default;

  /// Explicit all-ones over n stations (behaves like trivial(), but through
  /// the per-listener code paths — the digest-equivalence pin).
  static AudibilityMatrix full(std::size_t n);
  /// Rebuild a matrix from persisted/derived row-major bits (recounts the
  /// all_ones() cache). Throws AudibilityError on a size mismatch.
  static AudibilityMatrix from_bits(std::size_t n, std::vector<u8> bits);
  /// The textbook hidden-node topology: a clique except stations a and b,
  /// which cannot hear each other (both still reach the omnidirectional AP).
  /// Throws AudibilityError when a or b is out of range or a == b.
  static AudibilityMatrix hidden_pair(std::size_t n, std::size_t a, std::size_t b);
  /// The asymmetric-audibility gap: a clique except that station `deaf`
  /// cannot hear station `heard` — while `heard` still hears `deaf` (a
  /// one-way power/antenna asymmetry, not a mutual hidden pair). The deaf
  /// side's CCA runs straight through `heard`'s frames and collides with
  /// them; the hearing side defers correctly, so the damage is one-sided.
  /// Throws AudibilityError when heard or deaf is out of range or equal.
  static AudibilityMatrix asymmetric_pair(std::size_t n, std::size_t heard,
                                          std::size_t deaf);
  /// A line: station i hears only stations j with |i - j| <= 1. Every
  /// non-adjacent pair is mutually hidden.
  static AudibilityMatrix chain(std::size_t n);

 private:
  /// Count of zero bits; all_ones() is zero_bits_ == 0 (trivially true for
  /// the default-constructed matrix, matching the old scan semantics).
  std::size_t zero_bits_ = 0;
};

}  // namespace drmp::net
