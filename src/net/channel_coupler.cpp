#include "net/channel_coupler.hpp"

#include <algorithm>
#include <stdexcept>

namespace drmp::net {

ChannelCoupler::ChannelCoupler(Params p) : params_(std::move(p)) {
  if (params_.latency == 0) {
    // A zero-latency coupling has no lookahead window: lanes could never
    // run ahead at all, and a same-cycle cross-cell event would have to be
    // visible before the cycle it was generated in finished. One cycle is
    // the physical floor (energy detection alone is slower everywhere).
    throw std::invalid_argument(
        "net::ChannelCoupler: the inter-cell latency must be >= 1 cycle");
  }
}

void ChannelCoupler::attach(std::size_t member, std::size_t band,
                            ContendedMedium& medium) {
  if (medium.on_tx) {
    throw std::logic_error(
        "net::ChannelCoupler::attach: the medium already has an on_tx "
        "observer (one coupler per medium)");
  }
  ports_.push_back(Port{member, band, &medium, {}});
  const std::size_t port_idx = ports_.size() - 1;
  medium.on_tx = [this, port_idx](Cycle start, Cycle end, int source) {
    Port& self = ports_[port_idx];
    if (params_.immediate) {
      forward(self, start, end, source);
    } else {
      self.outbox.push_back(Pending{start, end, source});
    }
  };
}

void ChannelCoupler::forward(const Port& from, Cycle start, Cycle end,
                             int source) {
  for (Port& to : ports_) {
    if (&to == &from || to.band != from.band) continue;
    if (!params_.reach.hears(to.member, from.member)) continue;
    to.medium->begin_remote_tx(start + params_.latency, end + params_.latency,
                               source);
    ++forwarded_;
  }
}

void ChannelCoupler::set_reach(const AudibilityMatrix& reach) {
  if (!reach.trivial()) {
    std::size_t members = 0;
    for (const Port& p : ports_) members = std::max(members, p.member + 1);
    if (reach.n < members) {
      throw std::invalid_argument(
          "net::ChannelCoupler::set_reach: the reach matrix must cover every "
          "attached member cell");
    }
  }
  if (reach == params_.reach) return;
  params_.reach = reach;
  ++reach_epoch_;
}

void ChannelCoupler::exchange() {
  if (params_.immediate) return;  // Already delivered from inside begin_tx.
  for (Port& from : ports_) {
    for (const Pending& p : from.outbox) {
      forward(from, p.start, p.end, p.source);
    }
    from.outbox.clear();
  }
}

}  // namespace drmp::net
