#include "net/contended_medium.hpp"

#include <algorithm>

namespace drmp::net {

ContendedMedium::ContendedMedium(mac::Protocol proto, const sim::TimeBase& tb, Params p)
    : Medium(proto, tb), params_(p) {
  const mac::ProtocolTiming t = mac::timing_for(proto);
  double latency_us = p.cca_latency_us;
  if (latency_us < 0.0) latency_us = t.slot_us > 0.0 ? t.slot_us : t.sifs_us;
  cca_latency_ = tb.us_to_cycles(latency_us);
  capture_cycles_ = tb.us_to_cycles(p.capture_preamble_us);
}

Cycle ContendedMedium::begin_tx(Bytes frame, int source) {
  wake_subscribers();
  const Cycle end = now_ + frame_air_cycles(frame.size());
  bool overlap = false;
  for (Tx& t : on_air_) {
    if (t.end <= now_) continue;  // Ended; queued for delivery only.
    overlap = true;
    if (t.collided) continue;  // Already part of a pile-up.
    if (capture_cycles_ > 0 && now_ - t.start >= capture_cycles_) {
      // The receivers locked onto t's preamble long ago; the newcomer is
      // lost but t survives.
      ++capture_wins_;
    } else {
      t.collided = true;
      ++collided_frames_;
      ++sources_[t.source].collisions;
    }
  }
  SourceStats& s = sources_[source];
  ++s.frames;
  if (overlap) {
    ++collided_frames_;
    ++s.collisions;
  }
  on_air_.push_back(Tx{std::move(frame), now_, end, source, overlap, false});
  tx_end_ = std::max(tx_end_, end);
  return end;
}

void ContendedMedium::garble(Bytes& frame) {
  // Deterministic bit damage dense enough that FCS and HCS both fail.
  for (std::size_t i = 0; i < frame.size(); i += 7) frame[i] ^= 0xA5;
}

void ContendedMedium::tick() {
  // Channel accounting for the cycle now elapsing.
  if (busy()) ++busy_cycles_;
  for (const Tx& t : on_air_) {
    if (t.end > now_) ++sources_[t.source].airtime;
  }
  ++now_;

  // Latch the perceived carrier state every station samples this cycle. The
  // detection latency shifts the whole perceived window — a frame is
  // audible over [start+latency, end+latency) — so a short control frame is
  // still heard (late) rather than ending before detection ever completed,
  // and every station's idle reference shifts by the same amount.
  cca_busy_ = false;
  for (const Tx& t : on_air_) {
    if (t.start + cca_latency_ <= now_ && now_ < t.end + cca_latency_) {
      cca_busy_ = true;
      break;
    }
  }
  if (cca_busy_) last_cca_busy_ = now_;

  // Deliver (or discard) frames whose last byte has now arrived; entries
  // linger until their perceived window closes, then fall away.
  for (std::size_t i = 0; i < on_air_.size();) {
    Tx& t = on_air_[i];
    if (!t.delivered && t.end <= now_) {
      t.delivered = true;
      if (!t.collided) {
        deliver(t.frame, t.end, t.source);
      } else if (params_.deliver_garbled) {
        garble(t.frame);
        ++garbled_frames_;
        deliver(t.frame, t.end, t.source);
      } else {
        ++dropped_frames_;
      }
      t.frame = Bytes{};  // Only the perception window is still needed.
    }
    if (t.end + cca_latency_ <= now_) {
      on_air_.erase(on_air_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

Cycle ContendedMedium::cca_clear_at() const noexcept {
  // First clock value outside every perceived window [start+lat, end+lat),
  // given what is on the air now. Windows can chain, so advance through
  // them to a fixed point; new transmissions only push the answer later.
  Cycle w = now_;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Tx& t : on_air_) {
      if (t.start + cca_latency_ <= w && w < t.end + cca_latency_) {
        w = t.end + cca_latency_;
        moved = true;
      }
    }
  }
  return w;
}

Cycle ContendedMedium::cca_busy_onset_at() const noexcept {
  // Perceived onsets already scheduled by the detection latency: a frame
  // that started at s becomes audible at reading s+latency, with no further
  // begin_tx involved.
  Cycle onset = sim::Clockable::kIdleForever;
  for (const Tx& t : on_air_) {
    if (t.start + cca_latency_ >= now_) {
      onset = std::min(onset, t.start + cca_latency_);
    }
  }
  return onset;
}

Cycle ContendedMedium::quiescent_for() const {
  // Tick effects beyond bulk-accountable occupancy/airtime: frame delivery
  // (first at tick end-1), a perceived-carrier edge (the latch computed with
  // the post-increment clock changes at ticks start+lat-1 and end+lat-1, the
  // latter also retiring the entry). Everything strictly before the nearest
  // such tick is constant-state accounting. now_ equals the index of the
  // next tick at both contract evaluation points.
  if (on_air_.empty()) return sim::Clockable::kIdleForever;
  Cycle next_event = sim::Clockable::kIdleForever;
  for (const Tx& t : on_air_) {
    if (!t.delivered) next_event = std::min(next_event, t.end - 1);
    if (t.start + cca_latency_ >= now_ + 1) {
      next_event = std::min(next_event, t.start + cca_latency_ - 1);
    }
    next_event = std::min(next_event, t.end + cca_latency_ - 1);
  }
  return next_event >= now_ + 1 ? next_event - now_ : 0;
}

void ContendedMedium::skip_idle(Cycle n) {
  // The skipped stretch contains no delivery and no perceived-carrier edge
  // (quiescent_for guarantees it), so the per-tick bookkeeping collapses to
  // interval arithmetic.
  account_busy_skip(n);
  for (const Tx& t : on_air_) {
    if (t.end > now_) sources_[t.source].airtime += std::min(n, t.end - now_);
  }
  now_ += n;
  // Recompute the carrier latch for the post-skip clock; the state is
  // constant across the stretch, so only the final value matters.
  cca_busy_ = false;
  for (const Tx& t : on_air_) {
    if (t.start + cca_latency_ <= now_ && now_ < t.end + cca_latency_) {
      cca_busy_ = true;
      break;
    }
  }
  if (cca_busy_) last_cca_busy_ = now_;
}

ContendedMedium::SourceStats ContendedMedium::source(int id) const {
  const auto it = sources_.find(id);
  return it == sources_.end() ? SourceStats{} : it->second;
}

}  // namespace drmp::net
