#include "net/contended_medium.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/checkpoint.hpp"

namespace drmp::net {

ContendedMedium::ContendedMedium(mac::Protocol proto, const sim::TimeBase& tb, Params p)
    : Medium(proto, tb), params_(std::move(p)) {
  const mac::ProtocolTiming t = mac::timing_for(proto);
  double latency_us = params_.cca_latency_us;
  if (latency_us < 0.0) latency_us = mac::cca_latency_default_us(t);
  cca_latency_ = tb.us_to_cycles(latency_us);
  capture_cycles_ = tb.us_to_cycles(params_.capture_preamble_us);
  if (params_.audibility.n > kMaxMatrixListeners) {
    throw std::invalid_argument(
        "net::ContendedMedium: audibility matrices cover at most 64 stations");
  }
  for (std::size_t i = 0; i < params_.audibility.n; ++i) {
    // A station always hears its own past transmissions (the perceived-
    // carrier tail the half-duplex gates rely on); a zeroed diagonal would
    // let it count IFS progress over its own airtime — fail loudly instead.
    if (!params_.audibility.hears(i, i)) {
      throw std::invalid_argument(
          "net::ContendedMedium: the audibility diagonal must stay 1");
    }
  }
  last_heard_.assign(params_.audibility.n, 0);
}

void ContendedMedium::map_station(int source_id, std::size_t matrix_index) {
  if (trivial()) return;  // All-ones fast path: every id is omnidirectional.
  if (matrix_index >= params_.audibility.n) {
    throw std::invalid_argument(
        "net::ContendedMedium::map_station: index outside the audibility matrix");
  }
  station_idx_[source_id] = matrix_index;
}

void ContendedMedium::apply_audibility(const AudibilityMatrix& m) {
  if (trivial() || m.n != params_.audibility.n) {
    throw std::invalid_argument(
        "net::ContendedMedium::apply_audibility: revisions must cover the "
        "same station set as the construction-time matrix");
  }
  if (capture_cycles_ > 0) {
    throw std::logic_error(
        "net::ContendedMedium::apply_audibility: the capture effect is "
        "incompatible with topology revisions (verdicts taken under an "
        "earlier epoch cannot be re-litigated)");
  }
  for (std::size_t i = 0; i < m.n; ++i) {
    if (!m.hears(i, i)) {
      throw std::invalid_argument(
          "net::ContendedMedium::apply_audibility: the audibility diagonal "
          "must stay 1");
    }
  }
  if (m == params_.audibility) return;  // No change: not an epoch.
  params_.audibility = m;
  ++topology_epoch_;
  // Re-mask in-flight frames against the new epoch. Rebuild every
  // undelivered local entry's jam mask from scratch by pairwise interval
  // overlap: this is exactly the accumulation begin_tx/begin_remote_tx
  // performed (liveness at begin time == interval overlap, since local
  // starts are never in the past), evaluated under the new matrix. Delivered
  // entries are history — only their perception windows remain live — and
  // remote images carry no verdict of their own.
  for (Tx& t : on_air_) {
    if (!t.remote && !t.delivered) t.jam_mask = 0;
  }
  for (std::size_t a = 0; a + 1 < on_air_.size(); ++a) {
    for (std::size_t b = a + 1; b < on_air_.size(); ++b) {
      Tx& x = on_air_[a];
      Tx& y = on_air_[b];
      if (x.end <= y.start || y.end <= x.start) continue;  // No air overlap.
      const u64 both = hearers_of(x.src_idx) & hearers_of(y.src_idx);
      if (!x.remote && !x.delivered) x.jam_mask |= both;
      if (!y.remote && !y.delivered) y.jam_mask |= both;
    }
  }
  DRMP_OBS(rec_, now_, obs::EventKind::kTopologyEpoch, rec_track_,
           static_cast<int>(topology_epoch_), static_cast<i64>(m.n));
  // Sleeping transmit gates must re-read their carrier bounds under the new
  // footprints, and a skipped lane must be dispatched again.
  wake_subscribers();
  wake_self();
}

void ContendedMedium::restore_audibility(const AudibilityMatrix& m, u64 epoch) {
  if (trivial() || m.n != params_.audibility.n) {
    throw std::invalid_argument(
        "net::ContendedMedium::restore_audibility: matrix size mismatch");
  }
  params_.audibility = m;
  topology_epoch_ = epoch;
}

bool ContendedMedium::listener_deaf_at(int listener, Cycle end) const noexcept {
  // The receive-quality records ask about the delivery moment `end` (the
  // arriving frame's last air cycle is end - 1): a station whose own
  // transmission covers that cycle talked over the tail it would have had
  // to decode — half-duplex, it sensed nothing — so no reception outcome
  // (bad or clean) applies to it. A station that merely transmitted over an
  // early part of the frame but fell silent before its end DID hear an
  // undecodable tail, and its bad record stands.
  for (const Tx& t : on_air_) {
    if (t.source == listener && t.start < end && end <= t.end) return true;
  }
  return false;
}

int ContendedMedium::matrix_index(int id) const noexcept {
  if (trivial()) return -1;
  const auto it = station_idx_.find(id);
  return it == station_idx_.end() ? -1 : static_cast<int>(it->second);
}

u64 ContendedMedium::hearers_of(int src_idx) const noexcept {
  const std::size_t n = params_.audibility.n;
  if (trivial()) return ~u64{0};
  const u64 all = n >= 64 ? ~u64{0} : (u64{1} << n) - 1;
  if (src_idx < 0) return all;  // Omni transmitters reach every listener.
  u64 mask = 0;
  for (std::size_t l = 0; l < n; ++l) {
    if (params_.audibility.hears(l, static_cast<std::size_t>(src_idx))) {
      mask |= u64{1} << l;
    }
  }
  return mask;
}

void ContendedMedium::jam(Tx& t, u64 both) {
  t.jam_mask |= both;
  if (t.remote) return;  // Counted (and delivered) by its home cell only.
  if (!t.collided) {
    t.collided = true;
    ++collided_frames_;
    ++sources_[t.source].collisions;
    collided_airtime_ += t.end - t.start;
    DRMP_OBS(rec_, now_, obs::EventKind::kCollision, rec_track_, t.source);
  }
}

Cycle ContendedMedium::begin_tx(Bytes frame, int source) {
  wake_subscribers();
  const Cycle end = now_ + frame_air_cycles(frame.size());
  const int uidx = matrix_index(source);
  const u64 u_hearers = hearers_of(uidx);
  u64 u_jam = 0;
  bool overlap = false;
  for (Tx& t : on_air_) {
    if (t.end <= now_) continue;   // Ended; queued for delivery only.
    if (t.start >= end) continue;  // Future (remote) start past our window.
    // An omnidirectional receiver (the AP, the ether) hears every overlap;
    // matrix listeners are jammed only inside both transmitters' footprints.
    overlap = true;
    const u64 both = u_hearers & hearers_of(t.src_idx);
    if (t.remote) {  // Foreign energy: jams us; its own verdict is elsewhere.
      u_jam |= both;
      continue;
    }
    if (t.collided) {  // Already part of a pile-up.
      t.jam_mask |= both;
      u_jam |= both;
      continue;
    }
    if (capture_cycles_ > 0 && t.start <= now_ && now_ - t.start >= capture_cycles_) {
      // The receivers locked onto t's preamble long ago; the newcomer is
      // lost but t survives.
      ++capture_wins_;
      u_jam |= both;
    } else {
      jam(t, both);
      u_jam |= both;
    }
  }
  SourceStats& s = sources_[source];
  ++s.frames;
  if (overlap) {
    ++collided_frames_;
    ++s.collisions;
    collided_airtime_ += end - now_;
  }
  on_air_.push_back(
      Tx{std::move(frame), now_, end, source, overlap, false, uidx, u_jam});
  tx_end_ = std::max(tx_end_, end);
  DRMP_OBS(rec_, now_, obs::EventKind::kTxStart, rec_track_, source,
           static_cast<i64>(end - now_));
  if (overlap) {
    DRMP_OBS(rec_, now_, obs::EventKind::kCollision, rec_track_, source);
  }
  if (on_tx) on_tx(now_, end, source);
  return end;
}

void ContendedMedium::begin_remote_tx(Cycle start, Cycle end, int source) {
  if (capture_cycles_ > 0) {
    // A capture verdict asks which party was established first *at the
    // processing moment*; window-edge exchange deliberately reorders
    // processing moments, so capture on a coupled medium would make digests
    // depend on the execution path. Refuse loudly instead of diverging.
    throw std::logic_error(
        "net::ContendedMedium::begin_remote_tx: the capture effect is "
        "incompatible with co-channel coupling (order-dependent verdicts)");
  }
  if (start < now_ || end <= start) {
    throw std::logic_error(
        "net::ContendedMedium::begin_remote_tx: foreign carrier must arrive "
        "with a forward, non-empty air window (coupler latency >= lane "
        "lookahead)");
  }
  // Sleeping transmit gates must re-evaluate their carrier bounds, and a
  // round-skipped lane must be dispatched again: external input arrived.
  wake_subscribers();
  wake_self();
  // Jam every live local transmission whose air interval overlaps the
  // image's. Interval arithmetic only — no reading of "now" beyond the
  // liveness filter — so immediate and window-edge injection agree. Any
  // local entry with interval overlap is necessarily still live here
  // (its end exceeds `start`, which is not in the past), so no verdict is
  // ever missed against a delivered frame.
  for (Tx& t : on_air_) {
    if (t.remote) continue;  // Foreign-vs-foreign: neither is ours to judge.
    if (t.end <= start || end <= t.start) continue;
    jam(t, hearers_of(t.src_idx));
  }
  on_air_.push_back(Tx{Bytes{}, start, end, source, /*collided=*/false,
                       /*delivered=*/true, /*src_idx=*/-1, /*jam_mask=*/0,
                       /*remote=*/true});
  ++remote_live_;
  ++remote_txs_;
  // Stamped with the image's (possibly future) air start: injection happens
  // on the calling thread at a round edge, so the log order is the coupler's
  // deterministic exchange order regardless of worker count.
  DRMP_OBS(rec_, start, obs::EventKind::kRemoteCarrier, rec_track_, source,
           static_cast<i64>(end - start));
}

void ContendedMedium::garble(Bytes& frame) {
  // Deterministic bit damage dense enough that FCS and HCS both fail.
  for (std::size_t i = 0; i < frame.size(); i += 7) frame[i] ^= 0xA5;
}

void ContendedMedium::deliver_per_listener(Tx& t) {
  // Frame-level counters follow the omni verdict (t.collided) — identical to
  // the single-viewpoint backend for all-ones matrices; per-listener filters
  // decide who actually receives what.
  const bool garble_mode = params_.deliver_garbled;
  if (t.collided) {
    if (garble_mode) {
      ++garbled_frames_;
      DRMP_OBS(rec_, t.end, obs::EventKind::kGarbled, rec_track_, t.source,
               static_cast<i64>(t.frame.size()));
    } else {
      ++dropped_frames_;
      DRMP_OBS(rec_, t.end, obs::EventKind::kDrop, rec_track_, t.source,
               static_cast<i64>(t.frame.size()));
    }
  } else {
    DRMP_OBS(rec_, t.end, obs::EventKind::kDelivery, rec_track_, t.source,
             static_cast<i64>(t.frame.size()));
  }
  auto listener_hears = [&](int listener_idx, int src_idx) {
    return listener_idx < 0 || src_idx < 0 ||
           params_.audibility.hears(static_cast<std::size_t>(listener_idx),
                                    static_cast<std::size_t>(src_idx));
  };
  // Partition scratch lives on the object (capacity retained): delivery runs
  // once per frame, and a per-call vector trio would be the last steady-
  // state allocation on the tick path.
  std::vector<phy::MediumClient*>& clean = scratch_clean_;
  std::vector<phy::MediumClient*>& jammed = scratch_jammed_;
  std::vector<int>& clean_ids = scratch_clean_ids_;
  clean.clear();
  jammed.clear();
  clean_ids.clear();
  for (const Attached& a : clients_) {
    const int li = matrix_index(a.listener_id);
    if (!listener_hears(li, t.src_idx)) continue;  // Outside the footprint.
    const bool jam = li < 0 ? t.collided : ((t.jam_mask >> li) & 1) != 0;
    if (!jam) {
      if (a.listener_id != t.source) clean_ids.push_back(a.listener_id);
      clean.push_back(a.client);
    } else {
      // A jammed reception is undecodable energy whether or not the garbled
      // bytes are handed over: record the EIFS-relevant bad end for every
      // listener in the footprint (except the transmitter itself).
      if (a.listener_id != t.source) note_rx_quality(a.listener_id, t.end, true);
      if (garble_mode) jammed.push_back(a.client);
    }
  }
  if (clean.empty() && jammed.empty()) return;  // Noise for everyone.
  if (clean.empty()) {
    // The whole audible footprint is jammed: the trivial path's byte order
    // exactly (garble first, then the fault injector).
    garble(t.frame);
    if (tamper && tamper(t.frame)) ++tampered_;
    for (phy::MediumClient* c : jammed) c->on_frame(t.frame, t.end, t.source);
    return;
  }
  const bool tampered_now = tamper && tamper(t.frame);
  if (tampered_now) ++tampered_;
  for (int id : clean_ids) note_rx_quality(id, t.end, tampered_now);
  for (phy::MediumClient* c : clean) c->on_frame(t.frame, t.end, t.source);
  if (!jammed.empty()) {
    // Mixed footprints (non-trivial matrices only): the jammed listeners'
    // copy is the tampered frame garbled on top — one injector draw total,
    // keeping the corruption PRNG stream aligned with the clean path. The
    // copy recycles arena storage and goes straight back.
    Bytes g = arena_.acquire();
    g.assign(t.frame.begin(), t.frame.end());
    garble(g);
    for (phy::MediumClient* c : jammed) c->on_frame(g, t.end, t.source);
    arena_.release(std::move(g));
  }
}

void ContendedMedium::tick() {
  // Channel accounting for the cycle now elapsing. With foreign carrier
  // live, the tx_end_ high-watermark would bridge silent gaps before a
  // future-start image, so occupancy falls back to the exact interval scan.
  if (remote_live_ == 0 ? busy() : air_busy_at(now_)) ++busy_cycles_;
  for (const Tx& t : on_air_) {
    if (!t.remote && t.end > now_) ++sources_[t.source].airtime;
  }
  ++now_;

  // Latch the perceived carrier state every station samples this cycle. The
  // detection latency shifts the whole perceived window — a frame is
  // audible over [start+latency, end+latency) — so a short control frame is
  // still heard (late) rather than ending before detection ever completed,
  // and every station's idle reference shifts by the same amount.
  const bool was_busy = cca_busy_;
  cca_busy_ = false;
  for (const Tx& t : on_air_) {
    if (perceived(t, now_)) {
      cca_busy_ = true;
      break;
    }
  }
  if (cca_busy_) last_cca_busy_ = now_;
  if (cca_busy_ != was_busy) {
    // Latch edges only ever fall on executed ticks: the quiescence bound
    // stops every skipped stretch strictly before a perceived-window edge.
    DRMP_OBS(rec_, now_,
             cca_busy_ ? obs::EventKind::kCcaBusy : obs::EventKind::kCcaIdle,
             rec_track_);
  }

  // Deliver (or discard) frames whose last byte has now arrived; entries
  // linger until their perceived window closes, then fall away.
  for (std::size_t i = 0; i < on_air_.size();) {
    Tx& t = on_air_[i];
    if (!t.delivered && t.end <= now_) {
      t.delivered = true;
      const auto frame_bytes = static_cast<i64>(t.frame.size());
      if (trivial()) {
        if (!t.collided) {
          DRMP_OBS(rec_, t.end, obs::EventKind::kDelivery, rec_track_,
                   t.source, frame_bytes);
          deliver(t.frame, t.end, t.source);
        } else if (params_.deliver_garbled) {
          garble(t.frame);
          ++garbled_frames_;
          DRMP_OBS(rec_, t.end, obs::EventKind::kGarbled, rec_track_,
                   t.source, frame_bytes);
          deliver(t.frame, t.end, t.source, /*pre_damaged=*/true);
        } else {
          ++dropped_frames_;
          DRMP_OBS(rec_, t.end, obs::EventKind::kDrop, rec_track_, t.source,
                   frame_bytes);
          // Withheld, but every receiver still heard undecodable energy:
          // the EIFS reference records a damaged reception.
          record_rx_quality(t.source, t.end, /*bad=*/true);
        }
      } else {
        deliver_per_listener(t);
      }
      // Only the perception window is still needed; the bytes go back to
      // the cell arena for the next staged frame.
      arena_.release(std::move(t.frame));
      t.frame = Bytes{};
    }
    if (t.end + cca_latency_ <= now_) {
      // Record the retired window's last perceived cycle for every matrix
      // listener in its footprint (the live-entry scan below can no longer
      // see it). Foreign images are omnidirectional, so the src_idx < 0
      // branch covers them.
      for (std::size_t l = 0; l < last_heard_.size(); ++l) {
        if (t.src_idx < 0 ||
            params_.audibility.hears(l, static_cast<std::size_t>(t.src_idx))) {
          last_heard_[l] = std::max(last_heard_[l], t.end + cca_latency_ - 1);
        }
      }
      if (t.remote) --remote_live_;
      on_air_.erase(on_air_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

bool ContendedMedium::cca_busy(int listener) const noexcept {
  const int li = matrix_index(listener);
  if (li < 0) return cca_busy_;
  for (const Tx& t : on_air_) {
    if (t.src_idx >= 0 &&
        !params_.audibility.hears(static_cast<std::size_t>(li),
                                  static_cast<std::size_t>(t.src_idx))) {
      continue;
    }
    if (perceived(t, now_)) return true;
  }
  return false;
}

Cycle ContendedMedium::cca_idle_for(int listener) const noexcept {
  const int li = matrix_index(listener);
  if (li < 0) return cca_idle_for();
  Cycle last = last_heard_[static_cast<std::size_t>(li)];
  bool busy_now = false;
  for (const Tx& t : on_air_) {
    if (t.src_idx >= 0 &&
        !params_.audibility.hears(static_cast<std::size_t>(li),
                                  static_cast<std::size_t>(t.src_idx))) {
      continue;
    }
    if (t.start + cca_latency_ > now_) continue;  // Onset still scheduled.
    if (now_ < t.end + cca_latency_) busy_now = true;
    last = std::max(last, std::min(now_, t.end + cca_latency_ - 1));
  }
  return busy_now ? 0 : now_ - last;
}

Cycle ContendedMedium::cca_clear_at() const noexcept {
  // First clock value outside every perceived window [start+lat, end+lat),
  // given what is on the air now. Windows can chain, so advance through
  // them to a fixed point; new transmissions only push the answer later.
  Cycle w = now_;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Tx& t : on_air_) {
      if (t.start + cca_latency_ <= w && w < t.end + cca_latency_) {
        w = t.end + cca_latency_;
        moved = true;
      }
    }
  }
  return w;
}

Cycle ContendedMedium::cca_clear_at(int listener) const noexcept {
  const int li = matrix_index(listener);
  if (li < 0) return cca_clear_at();
  Cycle w = now_;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Tx& t : on_air_) {
      if (t.src_idx >= 0 &&
          !params_.audibility.hears(static_cast<std::size_t>(li),
                                    static_cast<std::size_t>(t.src_idx))) {
        continue;
      }
      if (t.start + cca_latency_ <= w && w < t.end + cca_latency_) {
        w = t.end + cca_latency_;
        moved = true;
      }
    }
  }
  return w;
}

Cycle ContendedMedium::cca_busy_onset_at() const noexcept {
  // Perceived onsets already scheduled by the detection latency: a frame
  // that started at s becomes audible at reading s+latency, with no further
  // begin_tx involved.
  Cycle onset = sim::Clockable::kIdleForever;
  for (const Tx& t : on_air_) {
    if (t.start + cca_latency_ >= now_) {
      onset = std::min(onset, t.start + cca_latency_);
    }
  }
  return onset;
}

Cycle ContendedMedium::cca_busy_onset_at(int listener) const noexcept {
  const int li = matrix_index(listener);
  if (li < 0) return cca_busy_onset_at();
  Cycle onset = sim::Clockable::kIdleForever;
  for (const Tx& t : on_air_) {
    if (t.src_idx >= 0 &&
        !params_.audibility.hears(static_cast<std::size_t>(li),
                                  static_cast<std::size_t>(t.src_idx))) {
      continue;
    }
    if (t.start + cca_latency_ >= now_) {
      onset = std::min(onset, t.start + cca_latency_);
    }
  }
  return onset;
}

Cycle ContendedMedium::quiescent_for() const {
  // Tick effects beyond bulk-accountable occupancy/airtime: frame delivery
  // (first at tick end-1), a perceived-carrier edge (the latch computed with
  // the post-increment clock changes at ticks start+lat-1 and end+lat-1, the
  // latter also retiring the entry). Everything strictly before the nearest
  // such tick is constant-state accounting. now_ equals the index of the
  // next tick at both contract evaluation points.
  if (on_air_.empty()) return sim::Clockable::kIdleForever;
  Cycle next_event = sim::Clockable::kIdleForever;
  for (const Tx& t : on_air_) {
    if (!t.delivered) next_event = std::min(next_event, t.end - 1);
    if (t.start + cca_latency_ >= now_ + 1) {
      next_event = std::min(next_event, t.start + cca_latency_ - 1);
    }
    next_event = std::min(next_event, t.end + cca_latency_ - 1);
  }
  return next_event >= now_ + 1 ? next_event - now_ : 0;
}

void ContendedMedium::skip_idle(Cycle n) {
  // The skipped stretch contains no delivery and no perceived-carrier edge
  // (quiescent_for guarantees it), so the per-tick bookkeeping collapses to
  // interval arithmetic. Per-listener idle views are derived lazily from
  // now_ and the retired-window records, so they need no replay here.
  // Occupancy may still *transition* mid-stretch once foreign carrier is
  // live (a future-start image turning on, or ending, needs no perception
  // edge to bound the skip), so the remote-aware path measures the union of
  // air intervals over the stretch exactly instead of the single busy->idle
  // step account_busy_skip assumes.
  if (remote_live_ == 0) {
    account_busy_skip(n);
  } else {
    std::vector<std::pair<Cycle, Cycle>>& spans = scratch_spans_;
    spans.clear();
    spans.reserve(on_air_.size());
    const Cycle lo = now_, hi = now_ + n;
    for (const Tx& t : on_air_) {
      const Cycle a = std::max(t.start, lo), b = std::min(t.end, hi);
      if (a < b) spans.emplace_back(a, b);
    }
    std::sort(spans.begin(), spans.end());
    Cycle covered = 0, edge = lo;
    for (const auto& [a, b] : spans) {
      const Cycle from = std::max(a, edge);
      if (b > from) covered += b - from;
      edge = std::max(edge, b);
    }
    busy_cycles_ += covered;
  }
  for (const Tx& t : on_air_) {
    if (!t.remote && t.end > now_) {
      sources_[t.source].airtime += std::min(n, t.end - now_);
    }
  }
  now_ += n;
  // Recompute the carrier latch for the post-skip clock; the state is
  // constant across the stretch, so only the final value matters.
  cca_busy_ = false;
  for (const Tx& t : on_air_) {
    if (perceived(t, now_)) {
      cca_busy_ = true;
      break;
    }
  }
  if (cca_busy_) last_cca_busy_ = now_;
}

ContendedMedium::SourceStats ContendedMedium::source(int id) const {
  const auto it = sources_.find(id);
  return it == sources_.end() ? SourceStats{} : it->second;
}


void ContendedMedium::save_state(sim::snap::Writer& w) {
  persist_medium(w);
  persist_contended(w);
}

void ContendedMedium::load_state(sim::snap::Reader& r) {
  persist_medium(r);
  persist_contended(r);
}

}  // namespace drmp::net
