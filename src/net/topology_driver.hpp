// TopologyDriver — scripted waypoint mobility publishing audibility epochs.
//
// Every layer below this one treats a cell's topology as frozen: the
// AudibilityMatrix is fixed at construction and stations are associated by
// fiat. Credible MAC evaluation needs links that appear, degrade and vanish
// while the protocol machinery reacts (cf. the traffic-aware adaptation
// literature, arXiv:1809.07862, and the hidden-terminal context analysis,
// arXiv:1806.06294). The driver owns per-station positions advanced along
// piecewise-linear waypoint segments, re-derives audibility from a distance
// threshold, and publishes epoch-stamped matrix revisions to every attached
// ContendedMedium via apply_audibility().
//
// Quiescence discipline: a matrix change is a carrier-visible event, so it
// must enter through the quiescence contract — never per-cycle polling. The
// driver's quiescent_for() bounds to the next *topology event*: a waypoint
// boundary (velocity change), a pair-range crossing, or a roam-threshold
// crossing, all solved in closed form on the current motion segments
// (dist^2(t) - R^2 is quadratic per segment). Float/cycle rounding may land
// a wake one cycle early; the tick then observes an unchanged derived
// matrix, publishes nothing, and re-arms one cycle out — a bounded number
// of no-op wakes, never a missed edge. Event cycles are a pure function of
// the script, so they are identical across worker_threads x idle_skip, and
// a frozen script (no waypoints) reports kIdleForever forever: the driver
// is inert and the cell keeps the static-matrix digests bit-for-bit.
//
// Roaming: when a station's distance to its serving access point exceeds
// roam_out_m and a strictly closer candidate exists, the driver retargets
// the serving AP and fires on_handoff. The handoff is serving-AP
// bookkeeping plus a reassociation exchange on the home medium (mac::
// LinkMgr); the station stays in its home cell's clock domain, which is
// what keeps lax-sync and reference coupling digest-identical through a
// handoff.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "net/audibility.hpp"
#include "sim/clock.hpp"
#include "sim/scheduler.hpp"

namespace drmp::net {

class ContendedMedium;

/// One scripted waypoint: arrive at (x, y) at time at_us; the segment from
/// the previous waypoint interpolates linearly (constant velocity).
struct Waypoint {
  double x_m = 0.0;
  double y_m = 0.0;
  double at_us = 0.0;
};

/// A station's scripted track: initial position plus waypoints with
/// strictly ascending arrival times. Past the final waypoint the station
/// rests. No waypoints = frozen in place.
struct MobilityPath {
  double x_m = 0.0;
  double y_m = 0.0;
  std::vector<Waypoint> waypoints;
};

/// A neighbour cell's access point, as a roaming handoff candidate.
struct NeighborAp {
  u32 cell = 0;  ///< Coupling-group member cell index (handoff target id).
  double x_m = 0.0;
  double y_m = 0.0;
};

/// Mobility profile for one cell (scenario::CellSpec::mobility). Enabling
/// it replaces the cell's static audibility matrix with the driver-derived
/// one; the two are mutually exclusive.
struct MobilitySpec {
  bool enabled = false;
  /// Station-to-station audibility radius: listener i hears transmitter j
  /// iff their distance is <= range_m. Symmetric by construction.
  double range_m = 100.0;
  /// One track per station, in station order (size must match the cell).
  std::vector<MobilityPath> stations;

  // ---- Roaming (inter-cell handoff) ----
  double ap_x_m = 0.0;  ///< Serving (home) AP position.
  double ap_y_m = 0.0;
  /// > 0 enables roaming: a station farther than this from its serving AP
  /// hands off to the closest strictly-closer candidate AP.
  double roam_out_m = 0.0;
  std::vector<NeighborAp> neighbor_aps;

  // ---- Association / adaptation flows (mac::LinkMgr) ----
  /// Require a probe/assoc exchange before a station may source traffic.
  /// Off by default: a frozen driver with association off is exactly the
  /// static cell, which is what the digest-equivalence pin relies on.
  bool associate = false;
  double assoc_start_us = 50.0;    ///< First station's probe launch time.
  double assoc_spacing_us = 30.0;  ///< Stagger between stations' probes.
  u32 probe_bytes = 32;
  u32 assoc_bytes = 48;
  /// Rate adaptation: step the ModeIdentity-level rate index down after
  /// `rate_down_after` consecutive lossy completions, back up after
  /// `rate_up_after` clean ones. Requires associate (the LinkMgr hosts it).
  bool adapt_rate = false;
  u32 rate_down_after = 2;
  u32 rate_up_after = 4;
  u32 rate_steps = 4;

  /// True when no track ever moves: the driver never publishes an epoch.
  bool frozen() const noexcept {
    for (const MobilityPath& p : stations) {
      if (!p.waypoints.empty()) return false;
    }
    return true;
  }

  /// Structural validation (throws AudibilityError): track count matches
  /// the cell's station count, waypoint times strictly ascend, thresholds
  /// are positive, the matrix fits kMaxMatrixListeners.
  void validate(std::size_t station_count) const;
};

class TopologyDriver final : public sim::Clockable {
 public:
  /// Sentinel serving-cell id: the home (own-cell) access point.
  static constexpr u32 kHomeCell = 0xFFFFFFFFu;

  TopologyDriver(MobilitySpec spec, const sim::TimeBase& tb);

  /// Registers a medium to receive matrix revisions (one per enabled band).
  void attach(ContendedMedium& medium) { media_.push_back(&medium); }

  /// Fired on a roaming handoff: (station local index, target cell id —
  /// kHomeCell when roaming back home). Runs inside the driver's tick.
  std::function<void(std::size_t, u32)> on_handoff;

  /// The currently-published matrix (construction: derived at cycle 0).
  const AudibilityMatrix& matrix() const noexcept { return matrix_; }
  /// Revisions published so far (mirrored by every attached medium).
  u64 epoch() const noexcept { return epoch_; }
  /// Serving AP of a station: kHomeCell or a NeighborAp::cell id.
  u32 serving(std::size_t station) const { return serving_[station]; }

  void tick() override;
  Cycle quiescent_for() const override;
  void skip_idle(Cycle n) override { now_ += n; }

  /// Checkpoint state: clock, epoch, serving table and the published
  /// matrix. Written only for mobility-enabled cells, so static-cell
  /// snapshot layouts (and the committed golden snapshot) are untouched.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(now_);
    ar.io(next_event_);
    ar.io(epoch_);
    ar.io(serving_);
    u64 n = static_cast<u64>(matrix_.n);
    std::vector<u8> bits = matrix_.bits;
    ar.io(n);
    ar.io(bits);
    if constexpr (Ar::kLoading) {
      matrix_ = AudibilityMatrix::from_bits(static_cast<std::size_t>(n),
                                            std::move(bits));
    }
  }
  /// Checkpoint-load epilogue: re-installs the restored matrix + epoch into
  /// every attached medium (jam masks were persisted; no re-masking).
  void after_load();

 private:
  struct Segment {
    double x, y;    ///< Position at t_us.
    double vx, vy;  ///< Velocity in m/us on [t_us, end_us).
    double end_us;  ///< Segment end (waypoint arrival), or +inf at rest.
  };

  Segment segment_at(std::size_t s, double t_us) const;
  void positions_at(double t_us, std::vector<double>& xs,
                    std::vector<double>& ys) const;
  AudibilityMatrix derive(Cycle c) const;
  /// Serving-AP retargeting at cycle c; fires on_handoff per change.
  void evaluate_roaming(Cycle c);
  /// Earliest topology event strictly after cycle c (kIdleForever = none):
  /// waypoint boundaries, pair-range crossings, roam-threshold crossings.
  Cycle compute_next_event(Cycle c) const;

  MobilitySpec spec_;
  sim::TimeBase tb_;
  std::vector<ContendedMedium*> media_;

  Cycle now_ = 0;
  Cycle next_event_ = kIdleForever;
  u64 epoch_ = 0;
  AudibilityMatrix matrix_;
  std::vector<u32> serving_;

  // Tick-path scratch (capacity retained).
  mutable std::vector<double> xs_;
  mutable std::vector<double> ys_;
};

}  // namespace drmp::net
