// ContendedMedium — the shared-channel backend of phy::Medium.
//
// The point-to-point base class serves the paper's single-station-plus-peer
// experiments, where overlap cannot happen by construction. A multi-station
// cell needs the opposite: overlap as a *defined, counted outcome*. This
// backend models the physical effects that make CSMA/CA a non-trivial MAC
// workload (cf. "Medium Access Control in Wireless NoC: A Context Analysis",
// arXiv:1806.06294):
//
//   * Carrier-sense latency. A transmission only becomes audible to other
//     stations' CCA circuits `cca_latency` after its first bit (energy
//     detection plus rx/tx turnaround — up to one slot time in 802.11 DSSS,
//     which is precisely why the slot time exists). Stations whose backoff
//     expires inside that window transmit over each other: the collision
//     window of the classic CSMA analysis.
//   * Collisions. Every transmission that overlaps another on the air is
//     marked collided. A collided frame is dropped before delivery (the
//     receiver saw noise) or, optionally, delivered garbled so the
//     redundancy-check failure paths are exercised; either way no ACK comes
//     back and the transmitter's timeout/retry machinery — CW doubling in
//     the BackoffRfu — carries the recovery, exactly the behaviour the DRMP
//     is sold on handling efficiently.
//   * Capture effect (optional). A receiver that has locked onto a frame's
//     preamble for `capture_preamble` keeps it through a late-starting
//     interferer: the established frame survives, only the newcomer is lost.
//   * Hidden nodes (optional). A per-station AudibilityMatrix makes every
//     channel property a property of the *listener*: a hidden station's CCA
//     never sees the ongoing frame it transmits over, and only receivers
//     inside both transmitters' footprints observe the collision —
//     participants outside the matrix (the access point, test sinks) are
//     omnidirectional and observe every overlap. The default (trivial)
//     matrix takes the original single-viewpoint code paths untouched, so
//     pre-existing cells keep bit-identical digests; an explicit all-ones
//     matrix runs the per-listener machinery and reproduces them (pinned).
//   * Co-channel neighbour cells (optional). begin_remote_tx injects
//     foreign-carrier images forwarded by net::ChannelCoupler from other
//     cells' media: pure energy that raises CCA, occupies the channel and
//     jams overlapping local transmissions, but is never delivered and
//     counts in its home cell only. Images carry absolute air windows that
//     may start in the future (the coupler's propagation+detection latency
//     shift), so every overlap verdict here is interval arithmetic —
//     independent of injection order, which is what lets the lax-sync
//     window-edge exchange match an immediate-injection reference
//     bit-for-bit (see docs/MULTICELL.md). A medium that never sees an
//     image runs the original code paths untouched.
//
// Per-source airtime/frame/collision counters feed the scenario engine's
// fleet reports; everything is cycle-deterministic, so shared-medium cells
// keep the fleet's bit-identical digest guarantee.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "net/audibility.hpp"
#include "obs/flight_recorder.hpp"
#include "phy/phy_model.hpp"

namespace drmp::net {

class ContendedMedium final : public phy::Medium {
 public:
  struct Params {
    /// Carrier-sense detection latency. Negative selects the protocol
    /// default: one contention slot (or SIFS where the protocol has no
    /// slotted contention). This is the collision window — 0 reproduces the
    /// base class's instant-CCA behaviour, where same-cycle starts are the
    /// only way to collide. The latency shifts the whole perceived-carrier
    /// window, onset AND release: a frame is audible over
    /// [start+latency, end+latency), so short control frames (an 11 Mbps
    /// ACK flies in 10 us) remain perceptible instead of ending before they
    /// were ever heard.
    double cca_latency_us = -1.0;
    /// Capture effect: an uncollided frame on the air for at least this
    /// long survives a late interferer. 0 disables capture (every overlap
    /// kills all parties).
    double capture_preamble_us = 0.0;
    /// Collided frames are delivered with deterministic bit damage instead
    /// of being dropped, driving the receivers' FCS/HCS failure paths.
    bool deliver_garbled = false;
    /// Per-station reachability (see net/audibility.hpp). Trivial = every
    /// listener hears every transmitter through the original code paths.
    /// Non-trivial matrices support at most kMaxMatrixListeners stations;
    /// map each one with map_station() before traffic flows.
    AudibilityMatrix audibility;
  };

  /// Jam masks are u64 bitsets over matrix indices.
  static constexpr std::size_t kMaxMatrixListeners = 64;

  /// Per-source channel accounting (key: station/source id).
  struct SourceStats {
    u64 frames = 0;      ///< Transmissions started.
    u64 collisions = 0;  ///< ... of which ended collided.
    Cycle airtime = 0;   ///< Cycles this source's signal occupied the air.

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(frames);
      ar.io(collisions);
      ar.io(airtime);
    }
  };

  ContendedMedium(mac::Protocol proto, const sim::TimeBase& tb, Params p);
  ContendedMedium(mac::Protocol proto, const sim::TimeBase& tb)
      : ContendedMedium(proto, tb, Params()) {}

  /// Binds a transmitter/listener id (the begin_tx source id space) to a row
  /// of the audibility matrix. Required for every matrix-covered station of
  /// a non-trivial matrix; unmapped ids stay omnidirectional.
  void map_station(int source_id, std::size_t matrix_index);

  /// Publishes a new topology epoch (net::TopologyDriver): swaps the
  /// audibility matrix and re-masks every undelivered local transmission
  /// against it — pairwise interval arithmetic over the live entries, which
  /// reproduces exactly the masks begin_tx accumulated whenever the matrix
  /// is unchanged. The omni `collided` flag and the collision counters are
  /// matrix-independent (any overlap collides at an omnidirectional
  /// receiver) and are not touched; CCA views, delivery partitioning and
  /// retirement consult the matrix lazily at evaluation time, so in-flight
  /// frames are judged against the epoch active at their delivery
  /// evaluation, as the dynamic-topology contract requires. Station count
  /// must match the current matrix (no trivial<->non-trivial transitions)
  /// and the capture effect must be off — a capture verdict taken under an
  /// earlier epoch cannot be re-litigated. A revision equal to the current
  /// matrix is a no-op (not an epoch). Wakes carrier subscribers and the
  /// medium's own lane so sleeping gates re-evaluate.
  void apply_audibility(const AudibilityMatrix& m);
  /// Checkpoint-load path: installs a restored matrix + epoch counter
  /// without re-masking (Tx jam masks are persisted) and without waking.
  void restore_audibility(const AudibilityMatrix& m, u64 epoch);
  /// Revisions applied so far (0 = the construction-time matrix).
  u64 topology_epoch() const noexcept { return topology_epoch_; }

  Cycle begin_tx(Bytes frame, int source) override;

  /// Foreign-carrier image from a co-channel neighbour cell (see
  /// phy::Medium::begin_remote_tx). The entry is pure energy: it raises
  /// every listener's CCA over the perceived window (omnidirectional — the
  /// inter-cell reach decision was the coupler's), jams any local
  /// transmission whose air interval overlaps, and occupies busy_cycles();
  /// it is never delivered, leaves no receive-quality record (a decodable
  /// neighbour-cell frame is foreign-addressed traffic, not an FCS failure)
  /// and counts toward no local frame/collision/airtime counter — the
  /// originating cell counts its own transmission. `start` must not lie in
  /// the past (the coupler's latency shift guarantees it) and the capture
  /// effect must be off: capture verdicts depend on processing order, which
  /// window-edge exchange deliberately relaxes. Wakes the medium's lane and
  /// carrier subscribers, so sleeping transmit gates re-evaluate.
  void begin_remote_tx(Cycle start, Cycle end, int source) override;

  bool cca_busy() const noexcept override { return cca_busy_; }
  Cycle cca_idle_for() const noexcept override {
    return cca_busy_ ? 0 : now() - last_cca_busy_;
  }
  Cycle cca_clear_at() const noexcept override;
  Cycle cca_busy_onset_at() const noexcept override;

  // Listener-qualified views (hidden-node physics). With a trivial matrix
  // or an unmapped/omni listener these delegate to the global view above.
  bool cca_busy(int listener) const noexcept override;
  Cycle cca_idle_for(int listener) const noexcept override;
  Cycle cca_clear_at(int listener) const noexcept override;
  Cycle cca_busy_onset_at(int listener) const noexcept override;

  void tick() override;

  // ---- Quiescence contract (sim/scheduler.hpp; global-skip-only like the
  // base class) ----
  /// Bound to the next delivery or perceived-carrier edge of anything on
  /// the air — long data frames are hundreds of thousands of architecture
  /// cycles of pure occupancy accounting between edges.
  Cycle quiescent_for() const override;
  void skip_idle(Cycle n) override;

  // ---- Contention statistics ----
  /// Transmissions that ended collided (all parties counted).
  u64 collided_frames() const noexcept { return collided_frames_; }
  /// Collided frames withheld from the receivers.
  u64 dropped_frames() const noexcept { return dropped_frames_; }
  /// Collided frames delivered garbled (deliver_garbled mode).
  u64 garbled_frames() const noexcept { return garbled_frames_; }
  /// Capture events: a late interferer lost to an established frame. One
  /// frame hit by several late interferers counts once per interferer.
  u64 capture_wins() const noexcept { return capture_wins_; }
  /// Air cycles burnt by transmissions that ended collided — the wasted
  /// share of busy_cycles() that airtime-efficiency reports subtract.
  Cycle collided_airtime() const noexcept { return collided_airtime_; }
  Cycle cca_latency_cycles() const noexcept { return cca_latency_; }
  /// Foreign-carrier images injected via begin_remote_tx.
  u64 remote_txs() const noexcept { return remote_txs_; }

  const std::map<int, SourceStats>& per_source() const noexcept { return sources_; }
  /// Stats for one source id (zeroes when it never transmitted).
  SourceStats source(int id) const;

  /// Attaches a flight recorder (null detaches). Events land on `track`:
  /// tx starts/collisions/deliveries/drops, CCA latch edges and foreign-
  /// carrier images. All are logged from executed ticks at protocol-edge
  /// cycles (the quiescence bound proves no edge hides in a skipped
  /// stretch), so the stream is identical with idle-skip on or off.
  void set_recorder(obs::FlightRecorder* rec, u16 track) noexcept {
    rec_ = rec;
    rec_track_ = track;
  }

  /// Checkpoint support: the base channel state plus everything live on the
  /// air and the contention counters. Params, the station->matrix binding
  /// and derived cycle constants are configuration; the tick-path scratch
  /// vectors are capacity caches with no logical content.
  void save_state(sim::snap::Writer& w) override;
  void load_state(sim::snap::Reader& r) override;

 private:
  struct Tx {
    Bytes frame;
    Cycle start;
    Cycle end;
    int source;
    bool collided;  ///< Omni view: overlapped at an omnidirectional receiver.
    bool delivered;
    /// Matrix index of `source`, or -1 (omnidirectional transmitter).
    int src_idx;
    /// Matrix listeners for whom this frame is jammed (hear it AND an
    /// overlapping transmission). `collided` carries the same verdict for
    /// every omni listener — they hear everything, so one bit suffices —
    /// and doubles as the counted-once guard for the collision counters.
    u64 jam_mask;
    /// Foreign-carrier image (begin_remote_tx): energy only. May start in
    /// the future; never delivered or counted, omnidirectional (src_idx -1).
    bool remote = false;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(frame);
      ar.io(start);
      ar.io(end);
      ar.io(source);
      ar.io(collided);
      ar.io(delivered);
      ar.io(src_idx);
      ar.io(jam_mask);
      ar.io(remote);
    }
  };

  template <class Ar>
  void persist_contended(Ar& ar) {
    ar.io(on_air_);
    ar.io(cca_busy_);
    ar.io(last_cca_busy_);
    ar.io(collided_frames_);
    ar.io(dropped_frames_);
    ar.io(garbled_frames_);
    ar.io(capture_wins_);
    ar.io(collided_airtime_);
    ar.io(remote_txs_);
    ar.io(remote_live_);
    ar.io(sources_);
    ar.io(last_heard_);
  }

  static void garble(Bytes& frame);
  bool trivial() const noexcept { return params_.audibility.trivial(); }
  /// Matrix index of a source/listener id; -1 = omnidirectional.
  int matrix_index(int id) const noexcept;
  /// Mask of matrix listeners that hear transmitter `src_idx` (-1 = all).
  u64 hearers_of(int src_idx) const noexcept;
  bool perceived(const Tx& t, Cycle at) const noexcept {
    return t.start + cca_latency_ <= at && at < t.end + cca_latency_;
  }
  /// Marks `t` jammed for `both` (+ the omni view), counting its collision
  /// and wasted airtime the first time any listener is jammed. Remote
  /// entries only accumulate the mask — their home cell owns the counters.
  void jam(Tx& t, u64 both);
  /// Exact channel-occupancy test: any air interval covering cycle `at`.
  /// Equals busy() whenever no remote entry is live (local intervals start
  /// in the past, so the tx_end_ high-watermark is exact); remote entries
  /// can start in the future, which makes the watermark overshoot silent
  /// gaps — the remote-aware accounting paths scan instead.
  bool air_busy_at(Cycle at) const noexcept {
    for (const Tx& t : on_air_) {
      if (t.start <= at && at < t.end) return true;
    }
    return false;
  }
  void deliver_per_listener(Tx& t);
  /// Half-duplex gate for the receive-quality records: a station radiating
  /// while another frame's last byte arrives heard nothing of it.
  bool listener_deaf_at(int listener, Cycle end) const noexcept override;

  Params params_;
  Cycle cca_latency_ = 0;
  Cycle capture_cycles_ = 0;
  std::vector<Tx> on_air_;

  bool cca_busy_ = false;
  Cycle last_cca_busy_ = 0;

  /// Audibility revisions applied (not persisted: the TopologyDriver owns
  /// the epoch and re-installs it on checkpoint load, keeping the committed
  /// static-cell snapshot layout untouched).
  u64 topology_epoch_ = 0;
  u64 collided_frames_ = 0;
  u64 dropped_frames_ = 0;
  u64 garbled_frames_ = 0;
  u64 capture_wins_ = 0;
  Cycle collided_airtime_ = 0;
  u64 remote_txs_ = 0;
  /// Un-retired foreign-carrier entries. 0 keeps every accounting path on
  /// the original local-only code (uncoupled cells stay bit-identical).
  std::size_t remote_live_ = 0;
  std::map<int, SourceStats> sources_;

  obs::FlightRecorder* rec_ = nullptr;
  u16 rec_track_ = 0;

  // ---- Non-trivial-matrix state ----
  std::map<int, std::size_t> station_idx_;  ///< source id -> matrix row.
  /// Last cycle each matrix listener perceived carrier from an already-
  /// retired transmission (live ones are folded in lazily per query).
  std::vector<Cycle> last_heard_;

  // ---- Tick-path scratch (capacity retained; see docs/ARCHITECTURE.md) ----
  std::vector<phy::MediumClient*> scratch_clean_;
  std::vector<phy::MediumClient*> scratch_jammed_;
  std::vector<int> scratch_clean_ids_;
  std::vector<std::pair<Cycle, Cycle>> scratch_spans_;
};

}  // namespace drmp::net
