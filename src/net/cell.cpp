#include "net/cell.hpp"

#include <map>
#include <stdexcept>

#include "est/gates.hpp"
#include "est/power.hpp"
#include "mac/wifi_ctrl.hpp"
#include "sim/checkpoint.hpp"

namespace drmp::net {

namespace {
// Point-to-point peer ids live far above fleet station ids (which start at 1).
constexpr int kPeerStationBase = 1000;
// Shared-cell access points live above every peer.
constexpr int kApSourceBase = 1 << 20;

// Locally-administered WiFi address blocks: stations get (cell, station)
// lab addresses, the cell AP a fixed host byte no station uses.
u64 shared_wifi_station_addr(std::size_t cell, std::size_t station) {
  return 0x0200'00'00'00'00ull | (static_cast<u64>(cell + 1) << 16) |
         (static_cast<u64>(station + 1) << 8) | 0x01ull;
}
u64 shared_wifi_ap_addr(std::size_t cell) {
  return 0x0200'00'00'00'00ull | (static_cast<u64>(cell + 1) << 16) | 0xAAFEull;
}
constexpr u8 kApUwbDevId = 0xFE;
}  // namespace

Cell::Cell(const scenario::CellSpec& spec,
           const std::array<scenario::ChannelSpec, kNumModes>& fleet_channel,
           u64 scenario_seed, std::size_t cell_index, int first_station_id,
           sim::Scheduler* external_sched, const scenario::TraceSpec& trace)
    : spec_(spec), cell_index_(cell_index), first_station_id_(first_station_id) {
  if (spec_.stations.empty()) {
    throw std::invalid_argument("net::Cell: a cell needs at least one station");
  }
  if (!shared() && spec_.stations.size() != 1) {
    throw std::invalid_argument(
        "net::Cell: point-to-point cells hold exactly one station");
  }
  if (shared() && !spec_.access_point && spec_.stations.size() != 2) {
    throw std::invalid_argument(
        "net::Cell: a shared cell without an access point mirrors exactly two "
        "stations onto each other");
  }
  for (const scenario::DeviceSpec& d : spec_.stations) {
    // The cell clock and every medium TimeBase come from station 0; a member
    // on a different architecture frequency would get silently skewed
    // protocol timing instead of its own clock domain.
    if (d.cfg.arch_freq_hz != spec_.stations[0].cfg.arch_freq_hz) {
      throw std::invalid_argument(
          "net::Cell: every station in a cell must share one arch_freq_hz");
    }
  }

  if (spec_.mobility.enabled) {
    // Mobility replaces the static matrix: the driver derives audibility and
    // owns every later revision, so the two configuration paths exclude each
    // other (ScenarioSpec::validate enforces the same for engine-built
    // fleets; standalone cells get the check here).
    if (!shared() || !spec_.access_point) {
      throw std::invalid_argument(
          "net::Cell: mobility requires a shared-medium cell with an access "
          "point");
    }
    if (!spec_.contention.audibility.trivial()) {
      throw std::invalid_argument(
          "net::Cell: mobility and an explicit audibility matrix are "
          "mutually exclusive");
    }
    if (spec_.contention.capture_preamble_us > 0.0) {
      throw std::invalid_argument(
          "net::Cell: mobility requires capture off (audibility revisions "
          "re-mask in-flight frames; capture state cannot be re-derived)");
    }
    spec_.mobility.validate(spec_.stations.size());
  }

  if (external_sched != nullptr) {
    sched_ = external_sched;
  } else {
    owned_sched_ =
        std::make_unique<sim::Scheduler>(spec_.stations[0].cfg.arch_freq_hz);
    sched_ = owned_sched_.get();
  }
  if (trace.enabled) {
    recorder_ = std::make_unique<obs::FlightRecorder>(trace.capacity);
    if (owned_sched_) {
      sched_rec_ = std::make_unique<obs::SchedRecorder>(*recorder_);
      sched_->set_observer(sched_rec_.get());
    }
  }
  if (spec_.mobility.enabled) {
    driver_ = std::make_unique<TopologyDriver>(
        spec_.mobility, sim::TimeBase(spec_.stations[0].cfg.arch_freq_hz));
  }
  build_media(fleet_channel, scenario_seed);
  if (driver_) {
    // Registered after the media, so within kStageMedium a published matrix
    // revision lands after every band's current-cycle tick — the first
    // deliveries evaluated under the new epoch are next cycle's, on both
    // execution paths.
    sched_->add(*driver_, "topology", sim::Scheduler::kStageMedium);
  }
  for (std::size_t s = 0; s < spec_.stations.size(); ++s) {
    build_station(s, scenario_seed);
  }
  if (driver_) {
    driver_->on_handoff = [this](std::size_t s, u32 target_cell) {
      if (stations_[s]->link) stations_[s]->link->handoff(target_cell);
    };
  }

  // Shared-cell access point: one scripted far end per mode, ACKing data and
  // answering RTS with CTS for every station on the medium.
  if (shared() && spec_.access_point) {
    const DrmpConfig& cfg0 = stations_[0]->device->config();
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (!media_[m]) continue;
      ap_[m] = std::make_unique<phy::ScriptedPeer>(
          *media_[m], stations_[0]->device->timebase(),
          kApSourceBase + static_cast<int>(cell_index_));
      ap_[m]->set_wifi_addr(mac::MacAddr::from_u64(shared_wifi_ap_addr(cell_index_)));
      ap_[m]->set_uwb_ids(cfg0.modes[m].ident.pnid, kApUwbDevId);
      // Stations running SIFS-spaced fragment bursts need the AP's ACKs to
      // chain the NAV through the burst (802.11 §9.1.4); historic cells
      // keep Duration-0 ACKs and their pinned digests.
      for (const scenario::DeviceSpec& d : spec_.stations) {
        if (d.cfg.modes[m].enabled && d.cfg.modes[m].ident.frag_burst_enabled) {
          ap_[m]->set_ack_duration_chaining(true);
          break;
        }
      }
      sched_->add(*ap_[m], "ap." + std::string(to_string(mode_from_index(m))));
    }
  }
}

Cell::~Cell() = default;

void Cell::build_media(const std::array<scenario::ChannelSpec, kNumModes>& fleet_channel,
                       u64 scenario_seed) {
  const sim::TimeBase tb(spec_.stations[0].cfg.arch_freq_hz);
  const std::array<scenario::ChannelSpec, kNumModes>& chan =
      spec_.channel ? *spec_.channel : fleet_channel;

  for (std::size_t m = 0; m < kNumModes; ++m) {
    // One medium per mode any member station enables.
    bool enabled = false;
    mac::Protocol proto = mac::Protocol::WiFi;
    for (const scenario::DeviceSpec& d : spec_.stations) {
      if (d.cfg.modes[m].enabled) {
        enabled = true;
        proto = d.cfg.modes[m].ident.proto;
        break;
      }
    }
    if (!enabled) continue;

    if (shared()) {
      if (!spec_.contention.audibility.trivial() &&
          spec_.contention.audibility.n != spec_.stations.size()) {
        throw std::invalid_argument(
            "net::Cell: the audibility matrix must cover exactly the cell's "
            "stations (the access point is omnidirectional)");
      }
      ContendedMedium::Params p;
      p.cca_latency_us = spec_.contention.cca_latency_us;
      p.capture_preamble_us = spec_.contention.capture_preamble_us;
      p.deliver_garbled = spec_.contention.deliver_garbled;
      // Mobility cells take the driver's cycle-0 derived matrix; revisions
      // arrive through apply_audibility() at topology-event edges.
      p.audibility =
          driver_ ? driver_->matrix() : spec_.contention.audibility;
      auto cm = std::make_unique<ContendedMedium>(proto, tb, p);
      if (driver_) driver_->attach(*cm);
      // Matrix rows are the cell's local station indices; station ids (the
      // begin_tx source id space) are fleet-global and contiguous here.
      for (std::size_t s = 0; s < spec_.stations.size(); ++s) {
        cm->map_station(first_station_id_ + static_cast<int>(s), s);
      }
      if (recorder_) {
        cm->set_recorder(recorder_.get(),
                         recorder_->track("medium." +
                                          std::string(to_string(mode_from_index(m)))));
      }
      media_[m] = std::move(cm);
    } else {
      media_[m] = std::make_unique<phy::Medium>(proto, tb);
    }
    sched_->add(*media_[m], "medium." + std::string(to_string(mode_from_index(m))),
                sim::Scheduler::kStageMedium);

    // Lossy-channel model. Point-to-point cells seed the corruption PRNG per
    // (seed, station, mode) — a station's stream is fleet-invariant; shared
    // cells seed per (seed, cell, mode), since the medium is the cell's.
    const u64 salt = shared() ? 0x100000ull + cell_index_ + 1
                              : static_cast<u64>(first_station_id_);
    channel_rng_[m] = scenario_seed ^ (0xC4A11D5Cull * salt) ^ (m << 16);
    const scenario::ChannelSpec& cs = chan[m];
    if (cs.loss_permille > 0) {
      u64* rng = &channel_rng_[m];
      media_[m]->tamper = [cs, rng](Bytes& frame) {
        if (frame.size() < cs.min_frame_bytes) return false;
        if (splitmix64(*rng) % 1000 >= cs.loss_permille) return false;
        const u64 r = splitmix64(*rng);
        frame[r % frame.size()] ^= static_cast<u8>(1u << ((r >> 32) % 8));
        return true;
      };
    }
  }
}

DrmpConfig Cell::shared_identity(const DrmpConfig& cfg, std::size_t local_index) const {
  DrmpConfig c = cfg;
  const bool mirrored = !spec_.access_point;
  const std::size_t peer_index = mirrored ? 1 - local_index : 0;
  const u64 gid = static_cast<u64>(first_station_id_) + local_index;
  // Decorrelate the backoff PRNGs even when every station was built from the
  // same config. Deliberately NOT the 0x9E37 multiplier for_station() uses —
  // re-applying that one would cancel it and hand every station the same
  // seed (a permanent collision storm between perfectly symmetric stations).
  c.backoff_seed =
      static_cast<u16>((cfg.backoff_seed ^ (0x6C8Du * gid) ^ 0x2A55u) | 1u);
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!c.modes[m].enabled) continue;
    auto& ident = c.modes[m].ident;
    std::size_t mode_members = 0;
    for (const scenario::DeviceSpec& d : spec_.stations) {
      if (d.cfg.modes[m].enabled) ++mode_members;
    }
    ident.contenders = mode_members > 0 ? static_cast<u32>(mode_members - 1) : 0;
    switch (ident.proto) {
      case mac::Protocol::WiFi:
        ident.self_addr = shared_wifi_station_addr(cell_index_, local_index);
        ident.peer_addr = mirrored
                              ? shared_wifi_station_addr(cell_index_, peer_index)
                              : shared_wifi_ap_addr(cell_index_);
        break;
      case mac::Protocol::Uwb:
        ident.pnid = static_cast<u16>(0xC000u + cell_index_);
        ident.dev_id = static_cast<u8>(local_index + 1);
        ident.peer_dev_id =
            mirrored ? static_cast<u8>(peer_index + 1) : kApUwbDevId;
        break;
      case mac::Protocol::WiMax:
        ident.basic_cid = static_cast<u16>(0x2000u + (cell_index_ << 6) + local_index);
        break;
    }
    if (ident.tdma_period_us > 0.0) {
      // Disjoint slot allocations inside the cell: 16 slots per period.
      const double step = ident.tdma_period_us / 16.0;
      ident.tdma_offset_us = static_cast<double>(local_index % 16) * step;
    }
  }
  return c;
}

void Cell::build_station(std::size_t local_index, u64 scenario_seed) {
  const scenario::DeviceSpec& dspec = spec_.stations[local_index];
  const int station_id = first_station_id_ + static_cast<int>(local_index);
  DrmpConfig cfg =
      shared() ? shared_identity(dspec.cfg, local_index) : dspec.cfg;
  // Born muted: no per-cycle trace-channel work in fleets, not even the
  // construction-time edges a post-hoc set_enabled(false) would record.
  cfg.trace_enabled = false;

  auto st = std::make_unique<Station>();
  st->station_id = station_id;
  st->device = std::make_unique<DrmpDevice>(*sched_, cfg, station_id);
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!cfg.modes[m].enabled) continue;
    st->device->attach_medium(mode_from_index(m), media_[m].get());
  }
  if (recorder_) {
    st->track = recorder_->track("station" + std::to_string(station_id));
    st->device->set_flight_recorder(recorder_.get(), st->track);
  }

  // Point-to-point far ends, mirroring the device's per-mode peer identities.
  if (!shared()) {
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (!cfg.modes[m].enabled) continue;
      st->peers[m] = std::make_unique<phy::ScriptedPeer>(
          *media_[m], st->device->timebase(),
          kPeerStationBase + station_id * static_cast<int>(kNumModes) +
              static_cast<int>(m));
      st->peers[m]->set_wifi_addr(mac::MacAddr::from_u64(cfg.modes[m].ident.peer_addr));
      st->peers[m]->set_uwb_ids(cfg.modes[m].ident.pnid, cfg.modes[m].ident.peer_dev_id);
      sched_->add(*st->peers[m], "peer." + std::string(to_string(mode_from_index(m))));
    }
  }

  // Link manager (mobility cells with association flows): probes/assocs go
  // through the ordinary Mode A host_send path; its FIFO completion router
  // needs to see every Mode A traffic submission too, so it is built before
  // the generators whose send lambdas record into it.
  if (driver_ && spec_.mobility.associate) {
    mac::LinkMgr::Params lp;
    lp.station_id = station_id;
    lp.start_us = spec_.mobility.assoc_start_us +
                  spec_.mobility.assoc_spacing_us *
                      static_cast<double>(local_index);
    lp.probe_bytes = spec_.mobility.probe_bytes;
    lp.assoc_bytes = spec_.mobility.assoc_bytes;
    lp.adapt_rate = spec_.mobility.adapt_rate;
    lp.rate_down_after = spec_.mobility.rate_down_after;
    lp.rate_up_after = spec_.mobility.rate_up_after;
    lp.rate_steps = spec_.mobility.rate_steps;
    st->link =
        std::make_unique<mac::LinkMgr>(lp, st->device->timebase(), *sched_);
    if (recorder_) st->link->set_recorder(recorder_.get(), st->track);
    DrmpDevice* dev = st->device.get();
    st->link->send = [dev](Bytes b) { dev->host_send(Mode::A, std::move(b)); };
    sched_->add(*st->link, "link");
  }

  // Traffic generators, one per enabled mode with an enabled traffic spec,
  // seeded per (scenario seed, global station id, mode).
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!cfg.modes[m].enabled || !dspec.traffic[m].enabled) continue;
    const u64 seed = scenario_seed ^
                     (0x7D3F00D5ull * static_cast<u64>(station_id)) ^ (m << 24);
    st->gens[m] = std::make_unique<mac::TrafficGen>(dspec.traffic[m],
                                                    st->device->timebase(), seed);
    DrmpDevice* dev = st->device.get();
    const Mode mode = mode_from_index(m);
    obs::FlightRecorder* rec = recorder_.get();
    const u16 track = st->track;
    const sim::Scheduler* sc = sched_;
    mac::LinkMgr* link = mode == Mode::A ? st->link.get() : nullptr;
    st->gens[m]->send = [dev, mode, rec, track, sc, link](Bytes b) {
      if (link) link->note_traffic_submit();
      DRMP_OBS(rec, sc->now(), obs::EventKind::kOffered, track,
               static_cast<i64>(b.size()), static_cast<i64>(index(mode)));
      dev->host_send(mode, std::move(b));
    };
    sched_->add(*st->gens[m], "traffic." + std::string(to_string(mode)));
  }

  // Associating stations start gated: no traffic until the probe/assoc
  // exchange completes (and again none mid-reassociation after a handoff).
  if (st->link && st->gens[index(Mode::A)]) {
    mac::TrafficGen* gen = st->gens[index(Mode::A)].get();
    st->link->gate = [gen](bool open) { gen->set_gated(!open); };
    gen->set_gated(true);
  }

  Station* s = st.get();
  obs::FlightRecorder* rec = recorder_.get();
  const sim::Scheduler* sc = sched_;
  st->device->on_tx_complete = [s, rec, sc](Mode m, bool ok, u32 retry_count) {
    const std::size_t i = index(m);
    ++s->completed[i];
    if (ok) ++s->tx_ok[i];
    s->retries[i] += retry_count;
    DRMP_OBS(rec, sc->now(), obs::EventKind::kComplete, s->track,
             ok ? 1 : 0, static_cast<i64>(retry_count));
    // Mode A completions are FIFO with submissions; the link manager pops
    // its submission-kind deque to tell management frames (which it owns)
    // from traffic (forwarded to the generator as before).
    const bool mgmt = (m == Mode::A && s->link)
                          ? s->link->notify_complete(ok, retry_count)
                          : false;
    if (!mgmt && s->gens[i]) s->gens[i]->notify_tx_complete();
  };

  stations_.push_back(std::move(st));
}

DrmpDevice& Cell::device(std::size_t i) { return *stations_.at(i)->device; }

template <class Ar>
void Cell::persist_cell(Ar& ar) {
  // The channel record: corruption PRNGs (the tamper lambdas capture pointers
  // into channel_rng_, so restoring the words restores the streams), the
  // media themselves, and the scripted access points.
  sim::snap::open_record(ar, "channel");
  ar.io(channel_rng_);
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!media_[m]) continue;
    if constexpr (Ar::kLoading) {
      media_[m]->load_state(ar);
    } else {
      media_[m]->save_state(ar);
    }
  }
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (ap_[m]) ar.io(*ap_[m]);
  }
  sim::snap::close_record(ar);

  // Mobility record — written only when the cell has a driver, so static
  // cells keep their historic snapshot layout (the committed golden snapshot
  // stays loadable without a version bump).
  if (driver_) {
    sim::snap::open_record(ar, "mobility");
    driver_->persist(ar);
    sim::snap::close_record(ar);
    if constexpr (Ar::kLoading) {
      // Re-install the restored matrix + epoch into every attached medium
      // (their construction-time matrix is the cycle-0 derivation).
      driver_->after_load();
    }
  }

  for (auto& st : stations_) {
    sim::snap::open_record(ar, "station" + std::to_string(st->station_id));
    ar.io(st->completed);
    ar.io(st->tx_ok);
    ar.io(st->retries);
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (st->peers[m]) ar.io(*st->peers[m]);
    }
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (st->gens[m]) ar.io(*st->gens[m]);
    }
    if constexpr (Ar::kLoading) {
      st->device->load_state(ar);
    } else {
      st->device->save_state(ar);
    }
    if (st->link) {
      st->link->persist(ar);
      if constexpr (Ar::kLoading) {
        // The generator gate is derived state the link re-applies: it is not
        // in the generator's (pre-existing) record layout.
        if (st->gens[index(Mode::A)]) {
          st->gens[index(Mode::A)]->set_gated(!st->link->gate_open());
        }
      }
    }
    sim::snap::close_record(ar);
  }
}

void Cell::save_state(sim::snap::Writer& w) { persist_cell(w); }
void Cell::load_state(sim::snap::Reader& r) { persist_cell(r); }

bool Cell::drained() const {
  for (const auto& st : stations_) {
    // A lane is not drained while a (re)association exchange is in flight —
    // the management completion is still owed.
    if (st->link && !st->link->settled()) return false;
    for (const auto& gen : st->gens) {
      if (gen && !gen->drained()) return false;
    }
  }
  return true;
}

scenario::DevicePower Cell::estimate_station_power(const Station& st) const {
  scenario::DevicePower pw;
  const double total =
      sched_->now() > 0 ? static_cast<double>(sched_->now()) : 1.0;
  std::map<std::string, double> activity;
  for (const rfu::Rfu* r : st.device->rfus()) {
    const auto it = est::drmp_rfu_blocks().find(r->name());
    if (it != est::drmp_rfu_blocks().end()) {
      activity[it->second.name] = static_cast<double>(r->busy_cycles()) / total;
    }
  }
  pw.cpu_activity = st.device->cpu().busy_fraction();
  pw.bus_activity = static_cast<double>(st.device->bus().busy_cycles()) / total;
  activity["cpu_core"] = pw.cpu_activity;
  activity["packet_bus+arbiter"] = pw.bus_activity;

  const est::Design design = est::drmp_design();
  const est::Process process;
  const double f = st.device->config().arch_freq_hz;
  constexpr double kDefaultActivity = 0.02;

  pw.raw_mw =
      est::estimate_power(design, process, f, activity, kDefaultActivity, {}).total_mw();
  est::PowerTechniques gated;
  gated.clock_gating = true;
  gated.power_shutoff = true;
  pw.gated_mw =
      est::estimate_power(design, process, f, activity, kDefaultActivity, gated)
          .total_mw();
  est::PowerTechniques dvfs = gated;
  dvfs.dvfs = true;
  dvfs.dvfs_freq_scale = 0.5;
  pw.dvfs_mw =
      est::estimate_power(design, process, f, activity, kDefaultActivity, dvfs)
          .total_mw();

  // Rate adaptation folds into the report as a re-estimate with the measured
  // activities scaled by the duty-weighted rate fraction — a lower effective
  // rate means proportionally less switching in the datapath blocks.
  pw.adapted_mw = pw.gated_mw;
  if (st.link) {
    pw.rate_scale = st.link->rate_scale(sched_->now());
    if (pw.rate_scale != 1.0) {
      for (auto& kv : activity) kv.second *= pw.rate_scale;
      pw.adapted_mw =
          est::estimate_power(design, process, f, activity, kDefaultActivity,
                              gated)
              .total_mw();
    }
  }
  return pw;
}

void Cell::collect(std::vector<scenario::DeviceStats>& devices,
                   std::vector<scenario::CellStats>& cells) const {
  for (const auto& st : stations_) {
    scenario::DeviceStats ds;
    ds.station_id = st->station_id;
    ds.cycles_run = sched_->now();
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (st->gens[m]) {
        ds.offered[m] = st->gens[m]->offered();
        ds.offered_bytes[m] = st->gens[m]->offered_bytes();
      }
      ds.completed[m] = st->completed[m];
      ds.tx_ok[m] = st->tx_ok[m];
      ds.retries[m] = st->retries[m];
      if (st->peers[m]) {
        ds.peer_rx[m] = static_cast<u32>(st->peers[m]->received_data_frames().size());
        ds.peer_acks[m] = st->peers[m]->acks_sent();
      }
      if (!shared() && media_[m]) ds.tampered[m] = media_[m]->tampered_frames();
      if (shared() && media_[m]) {
        const auto* cm = static_cast<const ContendedMedium*>(media_[m].get());
        const ContendedMedium::SourceStats ss = cm->source(st->station_id);
        ds.collisions[m] = ss.collisions;
        ds.airtime[m] = ss.airtime;
      }
    }
    ds.defers = st->device->backoff_rfu().defers();
    ds.nav_defers = st->device->backoff_rfu().nav_defers();
    ds.eifs_waits = st->device->backoff_rfu().eifs_waits();
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (!st->device->config().modes[m].enabled) continue;
      const Mode mode = mode_from_index(m);
      ds.nav_arms += st->device->nav(mode).arms();
      ds.nav_resets += st->device->nav(mode).resets();
      // A reservation still pending when the cell clock stopped: bounded by
      // the largest announceable Duration — the "no stranded NAV" pin.
      const Cycle expiry = st->device->nav(mode).expiry();
      if (expiry > sched_->now()) {
        ds.nav_hangover = std::max(ds.nav_hangover, expiry - sched_->now());
      }
      if (const phy::PhyTx* ptx = st->device->phy_tx(mode)) {
        ds.expired_acks += ptx->frames_expired(phy::TxKind::kAck);
        ds.expired_ctss += ptx->frames_expired(phy::TxKind::kCts);
        ds.expired_sifs_data += ptx->frames_expired(phy::TxKind::kSifsData);
        ds.frames_expired += ptx->frames_expired();
      }
    }
    if (st->device->config().modes[0].enabled) {
      if (auto* wifi =
              dynamic_cast<ctrl::WifiCtrl*>(&st->device->protocol_ctrl(Mode::A))) {
        ds.rts_sent = wifi->rts_sent;
        ds.cts_received = wifi->cts_received;
      }
    }
    if (st->link) {
      ds.reassociations = st->link->reassociations();
      ds.handoffs = st->link->handoffs();
      ds.rate_shifts = st->link->rate_shifts();
      ds.link_loss_drops = st->link->link_loss_drops();
      ds.rate_index = st->link->rate_index();
      ds.handoff_latency = st->link->handoff_latency_total();
    }
    ds.power = estimate_station_power(*st);
    devices.push_back(std::move(ds));
  }

  if (!shared()) return;
  scenario::CellStats cs;
  cs.cell_index = static_cast<u32>(cell_index_);
  cs.stations = static_cast<u32>(stations_.size());
  for (std::size_t m = 0; m < kNumModes; ++m) {
    if (!media_[m]) continue;
    const auto* cm = static_cast<const ContendedMedium*>(media_[m].get());
    cs.collided_frames[m] = cm->collided_frames();
    cs.dropped_frames[m] = cm->dropped_frames();
    cs.capture_wins[m] = cm->capture_wins();
    cs.tampered[m] = cm->tampered_frames();
    cs.busy_cycles[m] = cm->busy_cycles();
    cs.collided_airtime[m] = cm->collided_airtime();
    cs.topology_epochs[m] = cm->topology_epoch();
    if (ap_[m]) {
      cs.ap_rx[m] = static_cast<u32>(ap_[m]->received_data_frames().size());
      cs.ap_acks[m] = ap_[m]->acks_sent();
      cs.ap_ctss += ap_[m]->ctss_sent();
    }
  }
  cells.push_back(cs);
}

void Cell::export_metrics(obs::MetricsRegistry& fleet, bool per_station) const {
  obs::MetricsRegistry cell_reg;
  for (const auto& st : stations_) {
    obs::MetricsRegistry dev;
    dev.add("mac/defers", st->device->backoff_rfu().defers());
    dev.add("mac/nav_defers", st->device->backoff_rfu().nav_defers());
    dev.add("mac/eifs_waits", st->device->backoff_rfu().eifs_waits());
    u64 arms = 0, resets = 0, expired = 0, collisions = 0;
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (!st->device->config().modes[m].enabled) continue;
      const Mode mode = mode_from_index(m);
      arms += st->device->nav(mode).arms();
      resets += st->device->nav(mode).resets();
      if (const phy::PhyTx* ptx = st->device->phy_tx(mode)) {
        expired += ptx->frames_expired();
      }
      if (shared() && media_[m]) {
        const auto* cm = static_cast<const ContendedMedium*>(media_[m].get());
        collisions += cm->source(st->station_id).collisions;
      }
    }
    dev.add("mac/nav_arms", arms);
    dev.add("mac/nav_resets", resets);
    dev.add("phy/frames_expired", expired);
    if (shared()) dev.add("medium/collisions", collisions);
    if (st->link) {
      dev.add("mac/reassociations", st->link->reassociations());
      dev.add("mac/handoffs", st->link->handoffs());
      dev.add("mac/rate_shifts", st->link->rate_shifts());
      dev.add("mac/link_loss_drops", st->link->link_loss_drops());
    }
    // Twice on purpose: namespaced for the breakdown, unprefixed so the
    // fleet registry accumulates totals under the same names.
    if (per_station) {
      cell_reg.merge_from(dev, "station" + std::to_string(st->station_id) + "/");
    }
    fleet.merge_from(dev);
  }
  if (shared()) {
    for (std::size_t m = 0; m < kNumModes; ++m) {
      if (!media_[m]) continue;
      const auto* cm = static_cast<const ContendedMedium*>(media_[m].get());
      const std::string band = std::string(to_string(mode_from_index(m)));
      obs::MetricsRegistry med;
      med.add("medium." + band + "/collided_frames", cm->collided_frames());
      med.add("medium." + band + "/dropped_frames", cm->dropped_frames());
      med.add("medium." + band + "/capture_wins", cm->capture_wins());
      med.add("medium." + band + "/busy_cycles", cm->busy_cycles());
      med.add("medium." + band + "/collided_airtime", cm->collided_airtime());
      if (driver_) {
        med.add("medium." + band + "/topology_epochs", cm->topology_epoch());
      }
      cell_reg.merge_from(med);
      fleet.merge_from(med);
    }
  }
  fleet.merge_from(cell_reg, "cell" + std::to_string(cell_index_) + "/");
}

}  // namespace drmp::net
