#include "net/topology_driver.hpp"

#include <cmath>
#include <limits>
#include <string>

#include "net/contended_medium.hpp"

namespace drmp::net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Crossing roots at or below this offset (us) are "already happened":
/// sub-nanosecond, far below cycle resolution at any supported clock.
constexpr double kRootEps = 1e-9;

double dist2(double ax, double ay, double bx, double by) {
  const double dx = ax - bx, dy = ay - by;
  return dx * dx + dy * dy;
}

/// First time offset r > kRootEps (us) at which |d0 + v*r| == radius, given
/// relative position d0 and relative velocity v; kInf when the quadratic
/// has no future root. Tangent grazes shorter than a cycle are below model
/// resolution and may be skipped by rounding — the matrix is always
/// re-derived from actual positions, never integrated, so a skipped graze
/// cannot desynchronise anything.
double crossing_root(double dx, double dy, double dvx, double dvy,
                     double radius) {
  const double a = dvx * dvx + dvy * dvy;
  if (a <= 0.0) return kInf;  // No relative motion on this segment.
  const double b = 2.0 * (dx * dvx + dy * dvy);
  const double c = dx * dx + dy * dy - radius * radius;
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return kInf;
  const double sq = std::sqrt(disc);
  const double r1 = (-b - sq) / (2.0 * a);
  const double r2 = (-b + sq) / (2.0 * a);
  if (r1 > kRootEps) return r1;
  if (r2 > kRootEps) return r2;
  return kInf;
}

}  // namespace

void MobilitySpec::validate(std::size_t station_count) const {
  if (!enabled) return;
  if (stations.size() != station_count) {
    throw AudibilityError("MobilitySpec: " + std::to_string(stations.size()) +
                          " tracks for " + std::to_string(station_count) +
                          " stations");
  }
  if (station_count > ContendedMedium::kMaxMatrixListeners) {
    throw AudibilityError(
        "MobilitySpec: derived matrices cover at most 64 stations");
  }
  if (!(range_m > 0.0)) {
    throw AudibilityError("MobilitySpec: range_m must be > 0");
  }
  if (roam_out_m < 0.0) {
    throw AudibilityError("MobilitySpec: roam_out_m must be >= 0");
  }
  for (std::size_t s = 0; s < stations.size(); ++s) {
    double prev = 0.0;
    for (const Waypoint& w : stations[s].waypoints) {
      if (!(w.at_us > prev)) {
        throw AudibilityError("MobilitySpec: station " + std::to_string(s) +
                              " waypoint times must strictly ascend");
      }
      prev = w.at_us;
    }
  }
  if (adapt_rate && !associate) {
    throw AudibilityError(
        "MobilitySpec: rate adaptation requires association (the link "
        "manager hosts it)");
  }
  if (associate && (probe_bytes == 0 || assoc_bytes == 0)) {
    throw AudibilityError("MobilitySpec: management frames must be non-empty");
  }
  if (adapt_rate && (rate_steps < 2 || rate_steps > 16)) {
    throw AudibilityError("MobilitySpec: rate_steps must be in [2, 16]");
  }
}

TopologyDriver::TopologyDriver(MobilitySpec spec, const sim::TimeBase& tb)
    : spec_(std::move(spec)), tb_(tb) {
  spec_.validate(spec_.stations.size());  // Caller re-validates cell sizes.
  serving_.assign(spec_.stations.size(), kHomeCell);
  matrix_ = derive(0);
  next_event_ = compute_next_event(0);
}

TopologyDriver::Segment TopologyDriver::segment_at(std::size_t s,
                                                   double t_us) const {
  const MobilityPath& p = spec_.stations[s];
  double x0 = p.x_m, y0 = p.y_m, t0 = 0.0;
  for (const Waypoint& w : p.waypoints) {
    // Strict: at a waypoint boundary the *next* segment is current, so the
    // crossing search at a boundary wake runs with the new velocities (the
    // closing segment's position is identical; only motion differs).
    if (t_us < w.at_us) {
      const double span = w.at_us - t0;
      const double f = span > 0.0 ? (t_us - t0) / span : 1.0;
      Segment seg;
      seg.x = x0 + (w.x_m - x0) * f;
      seg.y = y0 + (w.y_m - y0) * f;
      seg.vx = span > 0.0 ? (w.x_m - x0) / span : 0.0;
      seg.vy = span > 0.0 ? (w.y_m - y0) / span : 0.0;
      seg.end_us = w.at_us;
      return seg;
    }
    x0 = w.x_m;
    y0 = w.y_m;
    t0 = w.at_us;
  }
  return Segment{x0, y0, 0.0, 0.0, kInf};  // Past the final waypoint: rest.
}

void TopologyDriver::positions_at(double t_us, std::vector<double>& xs,
                                  std::vector<double>& ys) const {
  const std::size_t n = spec_.stations.size();
  xs.resize(n);
  ys.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const Segment seg = segment_at(s, t_us);
    xs[s] = seg.x;
    ys[s] = seg.y;
  }
}

AudibilityMatrix TopologyDriver::derive(Cycle c) const {
  const double t_us = tb_.cycles_to_us(c);
  positions_at(t_us, xs_, ys_);
  const std::size_t n = spec_.stations.size();
  AudibilityMatrix m = AudibilityMatrix::full(n);
  const double r2 = spec_.range_m * spec_.range_m;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist2(xs_[i], ys_[i], xs_[j], ys_[j]) > r2) m.hide_pair(i, j);
    }
  }
  return m;
}

void TopologyDriver::evaluate_roaming(Cycle c) {
  if (spec_.roam_out_m <= 0.0) return;
  const double t_us = tb_.cycles_to_us(c);
  positions_at(t_us, xs_, ys_);
  const double out2 = spec_.roam_out_m * spec_.roam_out_m;
  for (std::size_t s = 0; s < spec_.stations.size(); ++s) {
    auto ap_pos = [&](u32 id, double& ax, double& ay) {
      if (id == kHomeCell) {
        ax = spec_.ap_x_m;
        ay = spec_.ap_y_m;
        return;
      }
      for (const NeighborAp& nb : spec_.neighbor_aps) {
        if (nb.cell == id) {
          ax = nb.x_m;
          ay = nb.y_m;
          return;
        }
      }
      ax = spec_.ap_x_m;
      ay = spec_.ap_y_m;
    };
    double ax, ay;
    ap_pos(serving_[s], ax, ay);
    const double d_serv = dist2(xs_[s], ys_[s], ax, ay);
    if (d_serv <= out2) continue;  // Serving link still inside threshold.
    // Pick the closest candidate; hand off only when strictly closer than
    // the serving AP (hysteresis against threshold-straddling flapping).
    u32 best = serving_[s];
    double best_d = d_serv;
    const double dh = dist2(xs_[s], ys_[s], spec_.ap_x_m, spec_.ap_y_m);
    if (dh < best_d) {
      best = kHomeCell;
      best_d = dh;
    }
    for (const NeighborAp& nb : spec_.neighbor_aps) {
      const double d = dist2(xs_[s], ys_[s], nb.x_m, nb.y_m);
      if (d < best_d) {
        best = nb.cell;
        best_d = d;
      }
    }
    if (best == serving_[s]) continue;  // Nothing strictly closer.
    serving_[s] = best;
    if (on_handoff) on_handoff(s, best);
  }
}

Cycle TopologyDriver::compute_next_event(Cycle c) const {
  const double t_us = tb_.cycles_to_us(c);
  double best = kInf;
  const std::size_t n = spec_.stations.size();
  // Waypoint boundaries: velocity changes re-open the crossing search.
  for (const MobilityPath& p : spec_.stations) {
    for (const Waypoint& w : p.waypoints) {
      if (w.at_us > t_us) {
        best = std::min(best, w.at_us);
        break;  // at_us strictly ascends.
      }
    }
  }
  // Crossing wakes are nudged one cycle past the root: all trigger
  // conditions are strict inequalities, so a wake landing exactly on a
  // crossing instant (an on-grid root) would observe the boundary state,
  // change nothing, and find the root already in the past — silently
  // sleeping to the next waypoint. One cycle later the inequality is
  // strict whenever the segment has motion. Still a pure function of the
  // script, so every execution policy wakes on the same cycle.
  const double nudge = tb_.cycles_to_us(1);
  // Pair-range crossings on the current motion segments. Roots beyond a
  // segment boundary are ignored — the boundary event re-evaluates with the
  // new velocities.
  const double r = spec_.range_m;
  for (std::size_t i = 0; i < n; ++i) {
    const Segment a = segment_at(i, t_us);
    for (std::size_t j = i + 1; j < n; ++j) {
      const Segment b = segment_at(j, t_us);
      const double root = crossing_root(a.x - b.x, a.y - b.y, a.vx - b.vx,
                                        a.vy - b.vy, r);
      if (root == kInf) continue;
      const double at = t_us + root;
      if (at <= std::min(a.end_us, b.end_us)) best = std::min(best, at + nudge);
    }
    if (spec_.roam_out_m > 0.0) {
      // Roam-threshold crossings against every candidate AP (a superset of
      // the serving-link trigger: spurious wakes are no-ops).
      auto roam_root = [&](double ax, double ay) {
        const double root =
            crossing_root(a.x - ax, a.y - ay, a.vx, a.vy, spec_.roam_out_m);
        if (root == kInf) return;
        const double at = t_us + root;
        if (at <= a.end_us) best = std::min(best, at + nudge);
      };
      roam_root(spec_.ap_x_m, spec_.ap_y_m);
      for (const NeighborAp& nb : spec_.neighbor_aps) roam_root(nb.x_m, nb.y_m);
      // Equidistance (midline) crossings between candidate AP pairs: the
      // handoff hysteresis flips the moment a strictly-closer candidate
      // appears, which need not coincide with a threshold crossing.
      // |p-A|^2 - |p-B|^2 is linear in t along a segment.
      auto midline_root = [&](double ax, double ay, double bx, double by) {
        const double f0 = dist2(a.x, a.y, ax, ay) - dist2(a.x, a.y, bx, by);
        const double f1 = 2.0 * (a.vx * (bx - ax) + a.vy * (by - ay));
        if (f1 == 0.0) return;
        const double root = -f0 / f1;
        if (root <= kRootEps) return;
        const double at = t_us + root;
        if (at <= a.end_us) best = std::min(best, at + nudge);
      };
      for (std::size_t u = 0; u < spec_.neighbor_aps.size(); ++u) {
        const NeighborAp& nu = spec_.neighbor_aps[u];
        midline_root(spec_.ap_x_m, spec_.ap_y_m, nu.x_m, nu.y_m);
        for (std::size_t v = u + 1; v < spec_.neighbor_aps.size(); ++v) {
          const NeighborAp& nv = spec_.neighbor_aps[v];
          midline_root(nu.x_m, nu.y_m, nv.x_m, nv.y_m);
        }
      }
    }
  }
  if (best == kInf) return kIdleForever;
  const Cycle e = tb_.us_to_cycles(best);
  return e > c ? e : c + 1;
}

void TopologyDriver::tick() {
  const Cycle t = now_++;
  if (t < next_event_) return;
  AudibilityMatrix m = derive(t);
  if (!(m == matrix_)) {
    matrix_ = std::move(m);
    ++epoch_;
    for (ContendedMedium* cm : media_) cm->apply_audibility(matrix_);
  }
  evaluate_roaming(t);
  next_event_ = compute_next_event(t);
}

Cycle TopologyDriver::quiescent_for() const {
  if (next_event_ == kIdleForever) return kIdleForever;
  return next_event_ > now_ ? next_event_ - now_ : 0;
}

void TopologyDriver::after_load() {
  for (ContendedMedium* cm : media_) cm->restore_audibility(matrix_, epoch_);
}

}  // namespace drmp::net
