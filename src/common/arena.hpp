// Slab-style recycling for the per-tick frame churn.
//
// Steady-state simulation moves one frame's bytes through a fixed pipeline —
// TxBuffer staging -> queued TxFrameEntry -> Medium in-flight -> fan-out to
// RxBuffers — and then throws the storage away, making the allocator the
// hottest "component" in a saturated cell. The two helpers here close that
// loop so the tick path performs zero heap allocations once warm:
//
//   * ByteArena — a free-list of retired Bytes buffers. The medium (the end
//     of a frame's life) releases storage back; the TxBuffer (the start)
//     acquires it for the next frame, capacity intact. One arena per cell:
//     everything attached to one medium shares one free-list, so the pool
//     size tracks the cell's frames-in-flight high-watermark.
//   * RingQueue — a power-of-two ring that *retains* popped slots. Unlike
//     std::deque (which allocates and frees blocks as it breathes), a warm
//     ring re-issues the same slots forever; push_slot() hands back a
//     retired element so its heap-owning members (a Bytes' capacity) can be
//     reused in place via assign().
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace drmp {

/// Free-list of retired byte buffers (see the header comment). Acquire may
/// return an empty, capacity-less buffer while the pool is priming; release
/// beyond the cap simply frees — the pool never grows past the workload's
/// concurrent-frame high-watermark by more than kMaxFree.
class ByteArena {
 public:
  Bytes acquire() {
    if (free_.empty()) return Bytes{};
    Bytes b = std::move(free_.back());
    free_.pop_back();
    b.clear();
    return b;
  }

  /// Takes ownership of a retired buffer. Capacity-less buffers are not
  /// worth pooling (nothing to reuse) and are dropped on the floor.
  void release(Bytes&& b) {
    if (b.capacity() == 0 || free_.size() >= kMaxFree) return;
    free_.push_back(std::move(b));
  }

  std::size_t pooled() const noexcept { return free_.size(); }

 private:
  static constexpr std::size_t kMaxFree = 256;
  std::vector<Bytes> free_;
};

/// FIFO ring over a power-of-two slot array. Popped slots are retained (not
/// destroyed) and re-issued by push_slot(), so element members that own heap
/// storage keep their capacity across reuse. Grows only when full.
template <typename T>
class RingQueue {
 public:
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }
  T& back() { return slots_[(head_ + count_ - 1) & (slots_.size() - 1)]; }
  const T& back() const {
    return slots_[(head_ + count_ - 1) & (slots_.size() - 1)];
  }

  /// Appends and returns a slot for in-place filling. The slot is a retired
  /// element once the ring has wrapped — assign into it rather than
  /// replacing it wholesale to reuse its storage.
  T& push_slot() {
    if (count_ == slots_.size()) grow();
    T& s = slots_[(head_ + count_) & (slots_.size() - 1)];
    ++count_;
    return s;
  }

  void push_back(T v) { push_slot() = std::move(v); }

  /// Retires the front slot in place (storage retained for reuse).
  void pop_front() {
    head_ = (head_ + 1) & (slots_.size() - 1);
    --count_;
  }

  /// Checkpoint support (sim/checkpoint.hpp): the ring serializes as its
  /// logical FIFO contents — slot recycling and capacity are hot-path
  /// artefacts a restored run rebuilds on its own.
  template <class Ar>
  void persist(Ar& ar) {
    u64 n = count_;
    ar.io(n);
    if constexpr (Ar::kLoading) {
      head_ = 0;
      count_ = 0;
      for (u64 i = 0; i < n; ++i) ar.io(push_slot());
    } else {
      for (std::size_t i = 0; i < count_; ++i) {
        ar.io(slots_[(head_ + i) & (slots_.size() - 1)]);
      }
    }
  }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> slots_;  ///< Power-of-two capacity.
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace drmp
