// Fundamental fixed-width types and byte/word packing helpers used across the
// DRMP code base. The hardware model is a 32-bit word architecture (thesis
// §3.6.1: "The output from the tables is compatible with the 32-bit hardware
// architecture"), so Word is the unit of the packet memory and packet bus.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace drmp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/// One 32-bit architecture word (packet memory / packet bus width).
using Word = u32;

/// Simulation time unit: one cycle of the architecture clock.
using Cycle = u64;

/// Byte buffer used for frames and payloads throughout the MAC layers.
using Bytes = std::vector<u8>;

/// Protocol mode slots. The DRMP serves up to three concurrent protocol
/// modes (thesis §1.3); they are referred to as modes A, B and C.
enum class Mode : u8 { A = 0, B = 1, C = 2 };

inline constexpr std::size_t kNumModes = 3;

constexpr std::size_t index(Mode m) noexcept { return static_cast<std::size_t>(m); }

constexpr Mode mode_from_index(std::size_t i) noexcept { return static_cast<Mode>(i); }

inline const char* to_string(Mode m) noexcept {
  switch (m) {
    case Mode::A: return "A";
    case Mode::B: return "B";
    case Mode::C: return "C";
  }
  return "?";
}

/// splitmix64 step: advances `state` and returns the next value. The
/// simulation's only PRNG primitive outside the backoff LFSR — seeded per
/// (scenario, device, mode) it makes every fleet run bit-reproducible.
inline u64 splitmix64(u64& state) noexcept {
  u64 z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Number of 32-bit words needed to hold n bytes.
constexpr std::size_t words_for_bytes(std::size_t n) noexcept { return (n + 3) / 4; }

/// Pack a little-endian byte stream into 32-bit words (zero padded).
std::vector<Word> pack_words(std::span<const u8> bytes);

/// Unpack `nbytes` bytes out of a little-endian word stream.
Bytes unpack_bytes(std::span<const Word> words, std::size_t nbytes);

/// 16-bit little-endian store/load helpers for frame codecs.
inline void put_le16(Bytes& b, u16 v) {
  b.push_back(static_cast<u8>(v & 0xFF));
  b.push_back(static_cast<u8>(v >> 8));
}
inline void put_le32(Bytes& b, u32 v) {
  b.push_back(static_cast<u8>(v & 0xFF));
  b.push_back(static_cast<u8>((v >> 8) & 0xFF));
  b.push_back(static_cast<u8>((v >> 16) & 0xFF));
  b.push_back(static_cast<u8>((v >> 24) & 0xFF));
}
inline u16 get_le16(std::span<const u8> b, std::size_t off) {
  return static_cast<u16>(b[off] | (b[off + 1] << 8));
}
inline u32 get_le32(std::span<const u8> b, std::size_t off) {
  return static_cast<u32>(b[off]) | (static_cast<u32>(b[off + 1]) << 8) |
         (static_cast<u32>(b[off + 2]) << 16) | (static_cast<u32>(b[off + 3]) << 24);
}

inline std::vector<Word> pack_words(std::span<const u8> bytes) {
  std::vector<Word> out(words_for_bytes(bytes.size()), 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out[i / 4] |= static_cast<Word>(bytes[i]) << (8 * (i % 4));
  }
  return out;
}

inline Bytes unpack_bytes(std::span<const Word> words, std::size_t nbytes) {
  Bytes out;
  out.reserve(nbytes);
  for (std::size_t i = 0; i < nbytes; ++i) {
    out.push_back(static_cast<u8>(words[i / 4] >> (8 * (i % 4))));
  }
  return out;
}

}  // namespace drmp
