#include "cpu/ext_isa.hpp"

#include <algorithm>

namespace drmp::cpu {

const std::vector<ExtInstr>& ext_isa_catalog() {
  static const std::vector<ExtInstr> catalog = {
      // Header-field mask-compare: address filtering, type dispatch.
      {"maskcmp.field", 8, 1, 4, 450},
      // Bit-field extract/insert across byte lanes (seq|frag packing).
      {"bfx.hdr", 6, 1, 3, 380},
      // Saturating modulo-increment for sequence counters.
      {"modinc", 5, 1, 1, 220},
      // Address match against a small CAM of known stations/CIDs.
      {"cam.match", 14, 2, 2, 900},
      // Inter-frame-space countdown compare (timer arming arithmetic).
      {"ifs.arm", 9, 2, 2, 350},
      // Checksum residue compare (status-word triage).
      {"residue.chk", 4, 1, 2, 150},
  };
  return catalog;
}

ExtIsaSummary ext_isa_summary() {
  ExtIsaSummary s;
  for (const auto& e : ext_isa_catalog()) {
    s.native_instr_per_packet += e.native_instr * e.uses_per_packet;
    s.extended_instr_per_packet += e.extended_instr * e.uses_per_packet;
    s.total_gate_cost += e.gate_cost;
  }
  return s;
}

u32 reprice_isr(u32 isr_instr) {
  const auto s = ext_isa_summary();
  if (isr_instr <= s.native_instr_per_packet) {
    return std::max(1u, isr_instr * s.extended_instr_per_packet /
                            std::max(1u, s.native_instr_per_packet));
  }
  return isr_instr - s.native_instr_per_packet + s.extended_instr_per_packet;
}

}  // namespace drmp::cpu
