#include "cpu/cpu_model.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace drmp::cpu {

void CpuModel::raise_hw_interrupt(Mode m, u32 event, Word param) {
  wake_self();
  pending_.push_back(PendingIsr{m, IsrContext{IsrCause::HwInterrupt, event, param}, now_});
}

void CpuModel::set_timer(Mode m, u32 timer_id, Cycle delay) {
  wake_self();  // The new deadline may undercut the current idle bound.
  cancel_timer(m, timer_id);
  timers_.push_back(Timer{now_ + delay, timer_seq_++, m, timer_id, false});
  std::push_heap(timers_.begin(), timers_.end(), std::greater<>{});
}

void CpuModel::cancel_timer(Mode m, u32 timer_id) {
  // Lazy cancellation: tombstone in place (heap order is untouched) and let
  // the entry pop with the heap. A stale tombstone at the top only makes the
  // idle bound conservative, never wrong.
  for (Timer& t : timers_) {
    if (t.mode == m && t.id == timer_id) t.cancelled = true;
  }
  while (!timers_.empty() && timers_.front().cancelled) {
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<>{});
    timers_.pop_back();
  }
}

void CpuModel::post_host_request(Mode m, u32 request_id, Word param) {
  wake_self();
  pending_.push_back(PendingIsr{m, IsrContext{IsrCause::HostRequest, request_id, param}, now_});
}

Cycle CpuModel::quiescent_for() const {
  // Skippable only when a tick is pure idle bookkeeping: no handler running
  // or parked, nothing dispatchable, no timer due. now_ equals the index of
  // the next tick at both contract evaluation points.
  if (busy() || running_.has_value() || !suspended_.empty() || !pending_.empty()) {
    return 0;
  }
  if (timers_.empty()) return kIdleForever;
  const Cycle due = timers_.front().fire_at;  // Conservative if tombstoned.
  return due > now_ ? due - now_ : 0;
}

void CpuModel::skip_idle(Cycle n) {
  if (stats_ != nullptr) {
    if (busy_stat_ == nullptr) busy_stat_ = &stats_->busy("cpu");
    busy_stat_->sample_n(false, n);
  }
  now_ += n;
}

std::size_t CpuModel::best_pending() const {
  std::size_t best = pending_.size();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (best == pending_.size() || index(pending_[i].mode) < index(pending_[best].mode)) {
      best = i;
    }
  }
  return best;
}

void CpuModel::dispatch(const PendingIsr& job, bool is_preemption) {
  max_dispatch_latency_ = std::max(max_dispatch_latency_, now_ - job.posted_at);
  auto& per_mode = mode_max_latency_[index(job.mode)];
  per_mode = std::max(per_mode, now_ - job.posted_at);

  Handler& h = handlers_[index(job.mode)];
  u32 instr = cfg_.isr_overhead_instr;
  if (is_preemption) instr += cfg_.preempt_overhead_instr / 2;
  if (h) {
    instr += h(job.ctx);
  }
  const Cycle cost = std::max<Cycle>(1, instr_to_arch_cycles(instr));
  busy_until_ = now_ + cost;
  running_ = job.mode;
  ++isr_count_;
}

void CpuModel::tick() {
  // Expire due timers into the pending queue, deadline order (ties in
  // arming order), popping the heap instead of erasing mid-vector.
  while (!timers_.empty() &&
         (timers_.front().cancelled || timers_.front().fire_at <= now_)) {
    std::pop_heap(timers_.begin(), timers_.end(), std::greater<>{});
    const Timer t = timers_.back();
    timers_.pop_back();
    if (!t.cancelled) {
      pending_.push_back(PendingIsr{t.mode, IsrContext{IsrCause::Timer, t.id, 0}, now_});
    }
  }

  const bool was_busy = busy();
  if (stats_ != nullptr) {
    if (busy_stat_ == nullptr) busy_stat_ = &stats_->busy("cpu");
    busy_stat_->sample(was_busy);
  }
  if (was_busy) {
    ++busy_cycles_;
    if (running_) ++mode_cycles_[index(*running_)];
  }

  // Completion: the running handler's budget is spent — pop back into the
  // handler that it pre-empted, if any (innermost-last nesting stack).
  if (!was_busy && running_) {
    if (!suspended_.empty()) {
      const Suspended s = suspended_.back();
      suspended_.pop_back();
      running_ = s.mode;
      // Restoring the parked frame costs the restore half of the overhead.
      busy_until_ =
          now_ + s.remaining +
          std::max<Cycle>(1, instr_to_arch_cycles(cfg_.preempt_overhead_instr / 2));
      ++now_;
      return;
    }
    running_.reset();
  }

  if (cfg_.preemptive && running_ && !pending_.empty()) {
    // Mid-handler pre-emption (§4.1.1): a strictly higher-priority mode's
    // request parks the running handler and runs immediately.
    const std::size_t b = best_pending();
    if (index(pending_[b].mode) < index(*running_)) {
      suspended_.push_back(Suspended{*running_, busy_until_ - now_});
      ++preemption_count_;
      const PendingIsr job = pending_[b];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(b));
      dispatch(job, /*is_preemption=*/true);
      ++now_;
      return;
    }
  }

  if (!busy() && !pending_.empty()) {
    // Idle dispatch: highest-priority pending ISR first (priority ordering in
    // the queue; mode A highest, matching the bus arbiter convention).
    const std::size_t b = best_pending();
    const PendingIsr job = pending_[b];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(b));
    dispatch(job, /*is_preemption=*/false);
  }

  ++now_;
}

}  // namespace drmp::cpu
