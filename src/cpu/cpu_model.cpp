#include "cpu/cpu_model.hpp"

#include <algorithm>
#include <cassert>

namespace drmp::cpu {

void CpuModel::raise_hw_interrupt(Mode m, u32 event, Word param) {
  pending_.push_back(PendingIsr{m, IsrContext{IsrCause::HwInterrupt, event, param}, now_});
}

void CpuModel::set_timer(Mode m, u32 timer_id, Cycle delay) {
  cancel_timer(m, timer_id);
  timers_.push_back(Timer{m, timer_id, now_ + delay});
}

void CpuModel::cancel_timer(Mode m, u32 timer_id) {
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [&](const Timer& t) { return t.mode == m && t.id == timer_id; }),
                timers_.end());
}

void CpuModel::post_host_request(Mode m, u32 request_id, Word param) {
  pending_.push_back(PendingIsr{m, IsrContext{IsrCause::HostRequest, request_id, param}, now_});
}

std::size_t CpuModel::best_pending() const {
  std::size_t best = pending_.size();
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (best == pending_.size() || index(pending_[i].mode) < index(pending_[best].mode)) {
      best = i;
    }
  }
  return best;
}

void CpuModel::dispatch(const PendingIsr& job, bool is_preemption) {
  max_dispatch_latency_ = std::max(max_dispatch_latency_, now_ - job.posted_at);
  auto& per_mode = mode_max_latency_[index(job.mode)];
  per_mode = std::max(per_mode, now_ - job.posted_at);

  Handler& h = handlers_[index(job.mode)];
  u32 instr = cfg_.isr_overhead_instr;
  if (is_preemption) instr += cfg_.preempt_overhead_instr / 2;
  if (h) {
    instr += h(job.ctx);
  }
  const Cycle cost = std::max<Cycle>(1, instr_to_arch_cycles(instr));
  busy_until_ = now_ + cost;
  running_ = job.mode;
  ++isr_count_;
}

void CpuModel::tick() {
  // Expire timers into the pending queue.
  for (std::size_t i = 0; i < timers_.size();) {
    if (timers_[i].fire_at <= now_) {
      pending_.push_back(
          PendingIsr{timers_[i].mode, IsrContext{IsrCause::Timer, timers_[i].id, 0}, now_});
      timers_.erase(timers_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  const bool was_busy = busy();
  if (stats_ != nullptr) {
    if (busy_stat_ == nullptr) busy_stat_ = &stats_->busy("cpu");
    busy_stat_->sample(was_busy);
  }
  if (was_busy) {
    ++busy_cycles_;
    if (running_) ++mode_cycles_[index(*running_)];
  }

  // Completion: the running handler's budget is spent — pop back into the
  // handler that it pre-empted, if any (innermost-last nesting stack).
  if (!was_busy && running_) {
    if (!suspended_.empty()) {
      const Suspended s = suspended_.back();
      suspended_.pop_back();
      running_ = s.mode;
      // Restoring the parked frame costs the restore half of the overhead.
      busy_until_ =
          now_ + s.remaining +
          std::max<Cycle>(1, instr_to_arch_cycles(cfg_.preempt_overhead_instr / 2));
      ++now_;
      return;
    }
    running_.reset();
  }

  if (cfg_.preemptive && running_ && !pending_.empty()) {
    // Mid-handler pre-emption (§4.1.1): a strictly higher-priority mode's
    // request parks the running handler and runs immediately.
    const std::size_t b = best_pending();
    if (index(pending_[b].mode) < index(*running_)) {
      suspended_.push_back(Suspended{*running_, busy_until_ - now_});
      ++preemption_count_;
      const PendingIsr job = pending_[b];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(b));
      dispatch(job, /*is_preemption=*/true);
      ++now_;
      return;
    }
  }

  if (!busy() && !pending_.empty()) {
    // Idle dispatch: highest-priority pending ISR first (priority ordering in
    // the queue; mode A highest, matching the bus arbiter convention).
    const std::size_t b = best_pending();
    const PendingIsr job = pending_[b];
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(b));
    dispatch(job, /*is_preemption=*/false);
  }

  ++now_;
}

}  // namespace drmp::cpu
