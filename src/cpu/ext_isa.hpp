// Extended Instruction Set Architecture model (thesis §4.2).
//
// "The operations that are not suitable for RHCP because they are not large
// enough for a coarse-grained RFU, or not similar enough in different
// protocols, and not suitable for software implementation on the native
// architecture because they will take too many instructions, will have a
// dedicated instruction in the CPU's ISA."
//
// This module catalogs those short datapath operations (masking, comparison,
// filtering, field extraction) with their native-ISA and extended-ISA
// instruction costs, and can re-price an ISR instruction budget to quantify
// the benefit — the §4.2 exploration the thesis defers to future work.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace drmp::cpu {

/// One candidate extended instruction.
struct ExtInstr {
  std::string name;
  u32 native_instr;    ///< Cost on the base RISC ISA.
  u32 extended_instr;  ///< Cost with the dedicated pipeline unit (usually 1-2).
  u32 uses_per_packet; ///< Typical invocations per MAC packet event.
  u32 gate_cost;       ///< Added pipeline-unit gates.
};

/// The catalog derived from the three protocols' control-flow analysis
/// (§2.3.2.2: masking/comparison/filtering are protocol-specific and short).
const std::vector<ExtInstr>& ext_isa_catalog();

struct ExtIsaSummary {
  u32 native_instr_per_packet = 0;
  u32 extended_instr_per_packet = 0;
  u32 total_gate_cost = 0;
  double speedup() const {
    return extended_instr_per_packet == 0
               ? 0.0
               : static_cast<double>(native_instr_per_packet) /
                     static_cast<double>(extended_instr_per_packet);
  }
};

/// Sums the catalog into per-packet ISR instruction counts for both ISAs.
ExtIsaSummary ext_isa_summary();

/// Re-prices an ISR instruction count: `isr_instr` contains
/// `native_instr_per_packet` worth of short datapath work that the extended
/// ISA collapses; the remainder (control flow proper) is untouched.
u32 reprice_isr(u32 isr_instr);

}  // namespace drmp::cpu
