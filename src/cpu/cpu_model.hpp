// Interrupt-driven CPU model (thesis Ch. 4).
//
// The DRMP's programming model runs the protocol control of all three modes
// as interrupt handlers on one CPU (Fig. 4.1b): "Each protocol's high-level
// control, partitioned to software, is implemented as an interrupt-handler
// routine." The model accounts cycles: every handler invocation costs a
// context-switch overhead plus the instructions the handler reports, scaled
// by the CPU:architecture clock ratio, so the experiments can show that a
// slow-clocked CPU keeps up with three concurrent protocol streams (§5.5.5).
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "sim/clock.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace drmp::cpu {

/// Why a handler was invoked.
enum class IsrCause : u8 {
  HwInterrupt = 0,  ///< Interrupt from the RHCP (event code + param).
  Timer = 1,        ///< A software timer expired.
  HostRequest = 2,  ///< The application processor requested service (e.g. TX).
};

struct IsrContext {
  IsrCause cause;
  u32 event = 0;  ///< IrqEvent code / timer id / host request id.
  Word param = 0;

  template <class Ar>
  void persist(Ar& ar) {
    ar.io(cause);
    ar.io(event);
    ar.io(param);
  }
};

class CpuModel : public sim::Clockable {
 public:
  struct Config {
    double cpu_freq_hz = 40e6;
    double arch_freq_hz = 200e6;
    /// Context save/restore + dispatch overhead per ISR entry (CPU cycles).
    u32 isr_overhead_instr = 40;
    /// §4.1.1: "a priority mechanism whereby the interrupt from a higher
    /// priority protocol would pre-empt another mode's interrupt handler."
    /// Off by default — the thesis prototype runs handlers to completion and
    /// relies on their brevity; turning this on models true mid-handler
    /// pre-emption (nested ISRs, mode A highest priority).
    bool preemptive = false;
    /// Extra context save + restore cost charged per pre-emption (CPU cycles,
    /// split evenly between suspend and resume).
    u32 preempt_overhead_instr = 24;
  };

  /// A mode's interrupt handler: receives the cause and returns the number
  /// of CPU instructions it executed (the brevity requirement of §4.1.1).
  using Handler = std::function<u32(const IsrContext&)>;

  explicit CpuModel(Config cfg) : cfg_(cfg) {}

  void set_handler(Mode m, Handler h) { handlers_[index(m)] = std::move(h); }

  /// RHCP interrupt line (one line, source register decoded by the ISR).
  void raise_hw_interrupt(Mode m, u32 event, Word param);

  /// Arms a one-shot software timer for a mode (architecture cycles).
  void set_timer(Mode m, u32 timer_id, Cycle delay);
  void cancel_timer(Mode m, u32 timer_id);

  /// Host (application-processor) request, e.g. "transmit this MSDU".
  void post_host_request(Mode m, u32 request_id, Word param = 0);

  void tick() override;

  // ---- Quiescence contract (sim/scheduler.hpp) ----
  /// Idle with nothing pending: skippable to the nearest armed timer
  /// deadline (the heap top doubles as the idle bound). Interrupts, host
  /// requests and timer arms wake the model.
  Cycle quiescent_for() const override;
  void skip_idle(Cycle n) override;

  // ---- Instrumentation ----
  bool busy() const noexcept { return now_ < busy_until_; }
  Cycle busy_cycles() const noexcept { return busy_cycles_; }
  Cycle total_cycles() const noexcept { return now_; }
  double busy_fraction() const {
    return now_ == 0 ? 0.0 : static_cast<double>(busy_cycles_) / static_cast<double>(now_);
  }
  u64 isr_invocations() const noexcept { return isr_count_; }
  Cycle mode_cpu_cycles(Mode m) const { return mode_cycles_[index(m)]; }
  /// Longest time an ISR request waited before its handler started (cycles).
  Cycle max_dispatch_latency() const noexcept { return max_dispatch_latency_; }
  /// Per-mode worst-case dispatch latency (cycles) — the figure the
  /// pre-emption ablation compares.
  Cycle max_dispatch_latency(Mode m) const { return mode_max_latency_[index(m)]; }
  /// Number of mid-handler pre-emptions performed (preemptive mode only).
  u64 preemptions() const noexcept { return preemption_count_; }
  /// Mode of the handler currently executing, if any.
  std::optional<Mode> running_mode() const noexcept { return running_; }

  void attach_stats(sim::StatsRegistry* stats) { stats_ = stats; }

  const Config& config() const noexcept { return cfg_; }

  /// Checkpoint support (sim/checkpoint.hpp). The timer min-heap vector
  /// travels verbatim — heap layout is deterministic for a given arm/cancel
  /// history, so restoring it byte-for-byte preserves pop order. Handlers
  /// and stats sinks are wiring.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(now_);
    ar.io(busy_until_);
    ar.io(busy_cycles_);
    ar.io(isr_count_);
    ar.io(preemption_count_);
    ar.io(max_dispatch_latency_);
    ar.io(mode_max_latency_);
    ar.io(mode_cycles_);
    ar.io(running_);
    ar.io(suspended_);
    ar.io(pending_);
    ar.io(timers_);
    ar.io(timer_seq_);
  }

 private:
  struct PendingIsr {
    Mode mode;
    IsrContext ctx;
    Cycle posted_at;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(mode);
      ar.io(ctx);
      ar.io(posted_at);
    }
  };
  /// Deadline-ordered timer entry. Timers live in a binary min-heap on
  /// (fire_at, seq) — expiry pops are O(log n) instead of the old O(n)
  /// mid-vector erase per fired timer, and the heap top is the CPU's
  /// quiescence bound. Cancellation is lazy (tombstones pop with the heap);
  /// equal deadlines fire in arming order via seq.
  struct Timer {
    Cycle fire_at;
    u64 seq;
    Mode mode;
    u32 id;
    bool cancelled;
    bool operator>(const Timer& o) const noexcept {
      return fire_at != o.fire_at ? fire_at > o.fire_at : seq > o.seq;
    }

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(fire_at);
      ar.io(seq);
      ar.io(mode);
      ar.io(id);
      ar.io(cancelled);
    }
  };
  /// A handler frame parked by a pre-emption, with its unexecuted remainder.
  struct Suspended {
    Mode mode;
    Cycle remaining;

    template <class Ar>
    void persist(Ar& ar) {
      ar.io(mode);
      ar.io(remaining);
    }
  };

  void dispatch(const PendingIsr& job, bool is_preemption);
  /// Index into pending_ of the best dispatchable request, or npos.
  std::size_t best_pending() const;

  Cycle instr_to_arch_cycles(u32 instr) const {
    return static_cast<Cycle>(static_cast<double>(instr) *
                                  (cfg_.arch_freq_hz / cfg_.cpu_freq_hz) +
                              0.5);
  }

  Config cfg_;
  Cycle now_ = 0;
  Cycle busy_until_ = 0;
  Cycle busy_cycles_ = 0;
  u64 isr_count_ = 0;
  u64 preemption_count_ = 0;
  Cycle max_dispatch_latency_ = 0;
  std::array<Cycle, kNumModes> mode_max_latency_{};
  std::array<Handler, kNumModes> handlers_{};
  std::array<Cycle, kNumModes> mode_cycles_{};
  std::optional<Mode> running_;
  std::vector<Suspended> suspended_;  ///< Nesting stack, innermost last.
  std::deque<PendingIsr> pending_;
  std::vector<Timer> timers_;  ///< Min-heap on (fire_at, seq); see Timer.
  u64 timer_seq_ = 0;
  sim::StatsRegistry* stats_ = nullptr;
  /// Cached stats sink (string-keyed lookup is too hot for the tick path).
  sim::BusyCounter* busy_stat_ = nullptr;
};

}  // namespace drmp::cpu
