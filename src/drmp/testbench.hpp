// System testbench: one DRMP device, three protocol media, and a scripted
// remote peer per medium — the counterpart of the thesis's Simulink
// simulation setup (Fig. A.1), used by the unit/integration tests and by
// every bench binary that regenerates a Chapter-5 figure or table.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "drmp/device.hpp"
#include "phy/channel.hpp"

namespace drmp {

class Testbench {
 public:
  explicit Testbench(DrmpConfig cfg = DrmpConfig::standard_three_mode());

  sim::Scheduler& scheduler() { return *sched_; }
  DrmpDevice& device() { return *device_; }
  phy::Medium& medium(Mode m) { return *media_[index(m)]; }
  phy::ScriptedPeer& peer(Mode m) { return *peers_[index(m)]; }
  const DrmpConfig& config() const { return cfg_; }

  /// Runs for n architecture cycles.
  void run_cycles(Cycle n) { sched_->run_cycles(n); }
  bool run_until(const std::function<bool()>& done, Cycle max_cycles) {
    return sched_->run_until(done, max_cycles);
  }

  // ---- Scenario drivers ----
  struct TxOutcome {
    bool completed = false;
    bool success = false;
    u32 retries = 0;
    Cycle start_cycle = 0;
    Cycle end_cycle = 0;
    double latency_us = 0.0;
  };

  /// Sends one MSDU on a mode and runs until the control software reports
  /// completion (ACKed / ARQ-tagged) or the cycle budget runs out.
  TxOutcome send_and_wait(Mode m, Bytes msdu, Cycle max_cycles = 40'000'000);

  /// Queues an MSDU without waiting (for concurrent multi-mode runs).
  void send_async(Mode m, Bytes msdu);

  /// Runs until `n` transmissions completed on mode m.
  bool wait_tx_count(Mode m, u32 n, Cycle max_cycles);

  /// Injects a peer-originated frame and waits for upward MSDU delivery.
  std::optional<Bytes> inject_and_wait(Mode m, const Bytes& msdu_plain, u32 seq,
                                       Cycle max_cycles = 40'000'000);

  /// Builds the on-air frame(s) a remote peer would send to deliver
  /// `msdu_plain` (encrypted with the device's mode key, fragmented at the
  /// mode's threshold).
  std::vector<Bytes> make_peer_frames(Mode m, const Bytes& msdu_plain, u32 seq) const;

  /// Builds a WiMAX ARQ-feedback MPDU acknowledging up to `cumulative_bsn`.
  Bytes make_arq_feedback(u32 cumulative_bsn) const;

  // ---- Outcome trackers ----
  u32 tx_completions(Mode m) const { return tx_done_[index(m)]; }
  u32 tx_successes(Mode m) const { return tx_ok_[index(m)]; }
  const std::vector<Bytes>& delivered(Mode m) const { return delivered_[index(m)]; }
  const std::vector<double>& tx_latencies_us(Mode m) const {
    return tx_latencies_us_[index(m)];
  }

 private:
  DrmpConfig cfg_;
  std::unique_ptr<sim::Scheduler> sched_;
  std::array<std::unique_ptr<phy::Medium>, kNumModes> media_{};
  std::array<std::unique_ptr<phy::ScriptedPeer>, kNumModes> peers_{};
  std::unique_ptr<DrmpDevice> device_;

  std::array<u32, kNumModes> tx_done_{};
  std::array<u32, kNumModes> tx_ok_{};
  std::array<u32, kNumModes> last_retries_{};
  std::array<std::vector<Bytes>, kNumModes> delivered_;
  std::array<Cycle, kNumModes> tx_start_cycle_{};
  std::array<std::vector<double>, kNumModes> tx_latencies_us_;
};

}  // namespace drmp
