#include "drmp/event_handler.hpp"

#include "mac/protocol.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "rfu/rfu_ids.hpp"

namespace drmp {

using hw::CtrlWord;
using hw::ctrl_status_addr;
using hw::Page;
using hw::page_base;
using irc::IrqEvent;
using irc::OpCall;
using rfu::Op;

void EventHandler::submit_drain(Mode m) {
  const auto& id = env_.idents[index(m)];
  const u32 mode_idx = static_cast<u32>(index(m));
  const u32 rx = page_base(m, Page::Rx);
  const u32 fcs_ok = ctrl_status_addr(m, CtrlWord::kFcsOk);
  const u32 status_base = ctrl_status_addr(m, static_cast<CtrlWord>(0));

  irc::ServiceRequest req;
  req.from_cpu = false;
  switch (id.proto) {
    case mac::Protocol::WiFi:
      req.ops = {
          {Op::RxDrainWifi, {rx, mode_idx, 1, fcs_ok}},
          {Op::ParseWifi, {rx, status_base}},
      };
      break;
    case mac::Protocol::Uwb: {
      // Header-only frames (Imm-ACK) carry no FCS.
      const bool has_fcs =
          env_.rx_bufs[index(m)]->frame_bytes() > mac::uwb::kImmAckBytes;
      req.ops = {
          {Op::RxDrainUwb, {rx, mode_idx, has_fcs ? 1u : 0u, fcs_ok}},
          {Op::ParseUwb, {rx, status_base}},
      };
      break;
    }
    case mac::Protocol::WiMax:
      // The optional CRC is validated by the parse (CI-dependent).
      req.ops = {
          {Op::RxDrainWimax, {rx, mode_idx, 0, fcs_ok}},
          {Op::ParseWimax, {rx, status_base}},
      };
      break;
  }
  tag_[index(m)] = env_.irc->submit(m, std::move(req));
  st_[index(m)] = St::WaitDrain;
}

u16 EventHandler::rx_frame_duration_us(Mode m) const {
  // The duration field sits at bytes [2,3) of every 802.11 MAC header,
  // control and data alike; the frame is still held in the Rx page at
  // evaluation time. This is a hardware peek like the status-word reads — no
  // modelled bus traffic, the CPU never sees the frame (§3.5).
  const Bytes frame = env_.mem->read_page_bytes(m, hw::Page::Rx);
  if (const auto ctl = mac::wifi::parse_control(frame)) return ctl->duration_us;
  if (frame.size() >= mac::wifi::kHdrBytes) {
    return mac::wifi::DataHeader::decode(
               std::span<const u8>(frame.data(), mac::wifi::kHdrBytes))
        .duration_us;
  }
  return 0;
}

void EventHandler::rx_snoop(Mode m, const Bytes& frame) {
  const std::size_t i = index(m);
  if (!env_.enabled[i] || media_[i] == nullptr ||
      env_.idents[i].proto != mac::Protocol::WiFi) {
    return;
  }
  const bool nav_on =
      env_.idents[i].nav_enabled && env_.nav[i] != nullptr && env_.tb != nullptr;
  u16 dur_us = 0;
  if (const auto ctl = mac::wifi::parse_control(frame)) {
    if (!ctl->fcs_ok) return;  // Collided/garbled deliveries are noise.
    if (ctl->fc.subtype == mac::wifi::Subtype::CfEnd ||
        ctl->fc.subtype == mac::wifi::Subtype::CfEndAck) {
      // NAV truncation (802.11: "stations receiving a CF-End frame shall
      // reset their NAV"): the contention-free period closed early, so any
      // reservation covering its remainder is void. The reset wakes
      // sleeping deferrers so they re-contend immediately.
      if (nav_on) env_.nav[i]->reset(media_[i]->now());
      return;
    }
    if (ctl->ra.to_u64() == env_.idents[i].self_addr) {
      if (ctl->fc.subtype == mac::wifi::Subtype::Cts ||
          ctl->fc.subtype == mac::wifi::Subtype::Ack) {
        // Response-anchor latch: the frame that releases this station's
        // SIFS-spaced follow-on (CTS -> protected data; fragment-burst ACK
        // -> next fragment) ends exactly now. Latching its rx-end here pins
        // the anchor the transmit op uses — a bystander frame drained
        // between this release and the op cannot shift it (the documented
        // RxRfu::last_rx_end() re-anchoring bug).
        const Cycle rx_end = env_.rx_bufs[i]->last_delivered().rx_end_cycle;
        env_.mem->cpu_write(hw::ctrl_status_addr(m, CtrlWord::kRespRxEndLo),
                            static_cast<Word>(rx_end & 0xFFFFFFFFull));
        env_.mem->cpu_write(hw::ctrl_status_addr(m, CtrlWord::kRespRxEndHi),
                            static_cast<Word>(rx_end >> 32));
      }
      return;  // Frames addressed here never arm this station's own NAV.
    }
    dur_us = ctl->duration_us;
  } else {
    if (!nav_on) return;  // Data durations only matter to an enabled NAV.
    const auto mpdu = mac::wifi::parse_data_mpdu(frame);
    if (!mpdu || !mpdu->fcs_ok ||
        mpdu->hdr.addr1.to_u64() == env_.idents[i].self_addr) {
      return;
    }
    dur_us = mpdu->hdr.duration_us;
  }
  // Virtual carrier sense (NAV): a verified frame addressed to another
  // station announces how long its exchange keeps the medium reserved, and
  // the reservation counts from the frame's end — which is exactly now.
  if (!nav_on || dur_us == 0) return;
  const Cycle now = media_[i]->now();
  env_.nav[i]->arm(now + env_.tb->us_to_cycles(static_cast<double>(dur_us)), now);
}

void EventHandler::evaluate_frame(Mode m) {
  const auto& id = env_.idents[index(m)];
  const bool parse_ok = status(m, CtrlWord::kParseOk) != 0;
  const bool hcs_ok = status(m, CtrlWord::kHcsOk) != 0;
  const bool fcs_ok = status(m, CtrlWord::kFcsOk) != 0;
  ++handled_[index(m)];

  if (!parse_ok || !hcs_ok || !fcs_ok) {
    // Bad redundancy: drop silently (no ACK — the transmitter will retry).
    ++bad_[index(m)];
    st_[index(m)] = St::Idle;
    return;
  }

  switch (id.proto) {
    case mac::Protocol::WiFi: {
      const Word type_word = status(m, CtrlWord::kFrameType);
      const auto type = static_cast<mac::wifi::FrameType>(type_word >> 8);
      const auto subtype = static_cast<mac::wifi::Subtype>(type_word & 0xFF);
      if (type == mac::wifi::FrameType::Control && subtype == mac::wifi::Subtype::Ack) {
        // Only an ACK addressed to this station completes its exchange — on
        // a shared medium the point coordinator ACKs every station, and an
        // unfiltered RxAckInd would falsely complete a bystander's frame.
        const u64 ra = static_cast<u64>(status(m, CtrlWord::kDstLo)) |
                       (static_cast<u64>(status(m, CtrlWord::kDstHi)) << 32);
        if (ra == id.self_addr && raise_irq) {
          raise_irq(m, IrqEvent::RxAckInd, ctrl::kAckParamAck);
        }
        // A bystander's ACK already armed the NAV at delivery (rx_snoop).
        st_[index(m)] = St::Idle;  // Control frame: Rx page free immediately.
        return;
      }
      if (type == mac::wifi::FrameType::Control && subtype == mac::wifi::Subtype::Cts) {
        // CTS addressed to this station unblocks the protocol control's
        // RTS/CTS handshake (param distinguishes it from a data ACK).
        const u64 ra = static_cast<u64>(status(m, CtrlWord::kDstLo)) |
                       (static_cast<u64>(status(m, CtrlWord::kDstHi)) << 32);
        if (ra == id.self_addr && raise_irq) {
          raise_irq(m, IrqEvent::RxAckInd, ctrl::kAckParamCts);
        }
        // A bystander's CTS is THE hidden-node rescue — this station may be
        // deaf to the RTS originator, but the responder's CTS reserves the
        // medium for the whole protected exchange. The delivery-time
        // rx_snoop armed it already (this drain can queue behind our own
        // in-flight transmit request, far too late).
        st_[index(m)] = St::Idle;
        return;
      }
      if (type == mac::wifi::FrameType::Control &&
          (subtype == mac::wifi::Subtype::CfEnd ||
           subtype == mac::wifi::Subtype::CfEndAck)) {
        // End of the contention-free period (PCF): notify the protocol
        // control, carrying any piggybacked CF-Ack (§2.3.2.1 #11).
        if (raise_irq) {
          raise_irq(m, IrqEvent::RxInd,
                    subtype == mac::wifi::Subtype::CfEndAck ? ctrl::kRxParamCfEndAck
                                                            : ctrl::kRxParamCfEnd);
        }
        st_[index(m)] = St::Idle;
        return;
      }
      if (type == mac::wifi::FrameType::Control && subtype == mac::wifi::Subtype::Rts) {
        // Autonomous CTS after SIFS via the AckRfu — the same time-critical
        // path as the ACK; the CPU never sees the RTS (§3.5).
        const u64 ra = static_cast<u64>(status(m, CtrlWord::kDstLo)) |
                       (static_cast<u64>(status(m, CtrlWord::kDstHi)) << 32);
        if (ra != id.self_addr) {
          st_[index(m)] = St::Idle;  // Not for us: NAV only (snooped already).
          return;
        }
        // The CTS carries the RTS reservation minus the SIFS gap and its own
        // air time (802.11 duration arithmetic), so third parties that hear
        // only this responder still cover the protected exchange.
        const u32 cts_dur_us = mac::wifi::cts_duration_from_rts(
            rx_frame_duration_us(m), mac::timing_for(mac::Protocol::WiFi));
        irc::ServiceRequest req;
        req.from_cpu = false;
        req.ops = {{Op::CtsGenWifi,
                    {status(m, CtrlWord::kSrcLo), status(m, CtrlWord::kSrcHi),
                     static_cast<u32>(index(m)), page_base(m, Page::Ack), cts_dur_us}}};
        tag_[index(m)] = env_.irc->submit(m, std::move(req));
        st_[index(m)] = St::WaitCtsGen;
        return;
      }
      if (type == mac::wifi::FrameType::Management &&
          subtype == mac::wifi::Subtype::Beacon) {
        // Passive scanning / synchronization (§2.3.2.1 #13/#15): beacons are
        // broadcast, never ACKed; the management plane (CPU) records them.
        if (raise_irq) raise_irq(m, IrqEvent::RxInd, ctrl::kRxParamBeacon);
        st_[index(m)] = St::WaitRelease;  // CPU reads the body, then releases.
        return;
      }
      if (type == mac::wifi::FrameType::Data) {
        // Address filter: only frames addressed to this station are ACKed.
        const u64 dst = static_cast<u64>(status(m, CtrlWord::kDstLo)) |
                        (static_cast<u64>(status(m, CtrlWord::kDstHi)) << 32);
        if (dst != id.self_addr) {
          st_[index(m)] = St::Idle;  // Overheard exchange: NAV snooped already.
          return;
        }
        if (subtype == mac::wifi::Subtype::CfPoll ||
            subtype == mac::wifi::Subtype::CfAckCfPoll) {
          // PCF poll: the protocol control answers it (data or Null) after
          // SIFS; polls are never ACKed with ACK frames (§2.3.2.1 #5).
          if (raise_irq) {
            raise_irq(m, IrqEvent::RxInd,
                      subtype == mac::wifi::Subtype::CfAckCfPoll
                          ? ctrl::kRxParamCfPollAck
                          : ctrl::kRxParamCfPoll);
          }
          st_[index(m)] = St::Idle;  // Polls carry no payload to hold.
          return;
        }
        if (subtype != mac::wifi::Subtype::Data) {
          st_[index(m)] = St::Idle;  // Null or other no-payload subtypes.
          return;
        }
        // Autonomous ACK after SIFS — the time-critical path (§3.5). When
        // the station runs SIFS-spaced fragment bursts and the fragment
        // announces more to come, the ACK re-announces the remaining
        // reservation (802.11 §9.1.4) so bystanders that hear only this
        // receiver keep their NAV chained across the burst.
        const bool chain = id.frag_burst_enabled &&
                           status(m, CtrlWord::kMoreFrag) != 0;
        const u32 ack_dur =
            chain ? mac::wifi::ack_duration_from_data(
                        rx_frame_duration_us(m),
                        mac::timing_for(mac::Protocol::WiFi))
                  : 0;
        irc::ServiceRequest req;
        req.from_cpu = false;
        if (ack_dur > 0) {
          req.ops = {{Op::AckGenWifiDur,
                      {status(m, CtrlWord::kSrcLo), status(m, CtrlWord::kSrcHi),
                       static_cast<u32>(index(m)), page_base(m, Page::Ack),
                       ack_dur}}};
        } else {
          req.ops = {{Op::AckGenWifi,
                      {status(m, CtrlWord::kSrcLo), status(m, CtrlWord::kSrcHi),
                       static_cast<u32>(index(m)), page_base(m, Page::Ack)}}};
        }
        tag_[index(m)] = env_.irc->submit(m, std::move(req));
        st_[index(m)] = St::WaitAckGen;
        return;
      }
      st_[index(m)] = St::Idle;
      return;
    }
    case mac::Protocol::Uwb: {
      const auto type = static_cast<mac::uwb::FrameType>(status(m, CtrlWord::kFrameType));
      if (type == mac::uwb::FrameType::ImmAck) {
        // Same shared-medium filter as the WiFi ACK: an Imm-ACK names the
        // station it acknowledges in its dest id.
        if (status(m, CtrlWord::kDstLo) == id.dev_id && raise_irq) {
          raise_irq(m, IrqEvent::RxAckInd, 0);
        }
        st_[index(m)] = St::Idle;
        return;
      }
      if (type == mac::uwb::FrameType::Data) {
        const Word dst = status(m, CtrlWord::kDstLo);
        if (dst != id.dev_id) {
          st_[index(m)] = St::Idle;
          return;
        }
        if (status(m, CtrlWord::kAckPolicy) != 0) {
          irc::ServiceRequest req;
          req.from_cpu = false;
          req.ops = {{Op::AckGenUwb,
                      {status(m, CtrlWord::kSrcLo), id.dev_id,
                       static_cast<u32>(index(m)), page_base(m, Page::Ack)}}};
          tag_[index(m)] = env_.irc->submit(m, std::move(req));
          st_[index(m)] = St::WaitAckGen;
          return;
        }
        if (raise_irq) raise_irq(m, IrqEvent::RxInd, 0);
        st_[index(m)] = St::WaitRelease;
        return;
      }
      st_[index(m)] = St::Idle;
      return;
    }
    case mac::Protocol::WiMax: {
      // Both data MPDUs and ARQ feedback go to the CPU; WiMAX uses no ACK
      // frames ("for WiMAX their role is limited", §2.3.2.1 #10).
      if (raise_irq) raise_irq(m, IrqEvent::RxInd, 0);
      st_[index(m)] = St::WaitRelease;
      return;
    }
  }
}

void EventHandler::on_request_complete(Mode m, u32 tag) {
  wake_self();
  if (tag != tag_[index(m)]) return;
  switch (st_[index(m)]) {
    case St::WaitDrain:
      evaluate_frame(m);
      return;
    case St::WaitAckGen:
      ++acked_[index(m)];
      if (raise_irq) raise_irq(m, IrqEvent::RxInd, 0);
      st_[index(m)] = St::WaitRelease;
      return;
    case St::WaitCtsGen:
      // CTS staged; the RTS itself carries nothing for the CPU.
      ++cts_[index(m)];
      st_[index(m)] = St::Idle;
      return;
    default:
      return;
  }
}

void EventHandler::release(Mode m) {
  wake_self();  // The freed Rx page may admit the next buffered frame.
  if (st_[index(m)] == St::WaitRelease) st_[index(m)] = St::Idle;
}

Cycle EventHandler::quiescent_for() const {
  // Every non-Idle state is a pure wait on a callback that wakes this
  // component (request completion, Rx-page release); a tick only *acts*
  // when some enabled mode is Idle with a frame waiting.
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!env_.enabled[i]) continue;
    if (st_[i] == St::Idle && env_.rx_bufs[i] != nullptr &&
        env_.rx_bufs[i]->frame_ready()) {
      return 0;
    }
  }
  return kIdleForever;
}

void EventHandler::skip_idle(Cycle n) {
  // Replays the per-mode sampling of n constant-state ticks.
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!env_.enabled[i]) continue;
    if (env_.stats != nullptr) {
      if (busy_stat_ == nullptr) busy_stat_ = &env_.stats->busy("event_handler");
      busy_stat_->sample_n(st_[i] != St::Idle, n);
    }
  }
}

void EventHandler::tick() {
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!env_.enabled[i]) continue;
    if (env_.stats != nullptr) {
      if (busy_stat_ == nullptr) busy_stat_ = &env_.stats->busy("event_handler");
      busy_stat_->sample(st_[i] != St::Idle);
    }
    if (st_[i] == St::Idle && env_.rx_bufs[i] != nullptr &&
        env_.rx_bufs[i]->frame_ready()) {
      submit_drain(mode_from_index(i));
    }
  }
}

}  // namespace drmp
