#include "drmp/api.hpp"

#include <cassert>

#include "irc/irc.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "rfu/rfu_ids.hpp"

namespace drmp::api {

using hw::CtrlWord;
using hw::ctrl_hdr_tmpl_addr;
using hw::ctrl_status_addr;
using hw::Page;
using hw::page_base;
using irc::OpCall;
using rfu::Op;

std::vector<OpCall> cDRMP::expand(Mode m, Command cmd, const std::vector<Word>& a) {
  const u32 mode_idx = static_cast<u32>(index(m));
  const u32 raw = page_base(m, Page::Raw);
  const u32 crypt = page_base(m, Page::Crypt);
  const u32 tx = page_base(m, Page::Tx);
  const u32 rx = page_base(m, Page::Rx);
  const u32 defrag = page_base(m, Page::Defrag);
  const u32 scratch = page_base(m, Page::Scratch);
  const u32 ack = page_base(m, Page::Ack);
  const u32 rx_scratch = page_base(m, Page::RxScratch);
  const u32 rx_out = page_base(m, Page::RxOut);
  const u32 tmpl = ctrl_hdr_tmpl_addr(m);
  const u32 seq_out = ctrl_status_addr(m, CtrlWord::kSeqOut);
  const u32 arq_out = ctrl_status_addr(m, CtrlWord::kArqOut);
  const u32 cid_out = ctrl_status_addr(m, CtrlWord::kCid);
  const u32 pack_out = ctrl_status_addr(m, CtrlWord::kPackCount);
  (void)ack;

  switch (cmd) {
    // ------------------------------------------------------------- WiFi
    case Command::kWifiPrepareTx:
      return {
          {Op::SeqAssign, {mode_idx, seq_out}},
      };
    case Command::kWifiEncrypt:
      return {
          {Op::EncryptRc4, {raw, crypt, a.at(0), 0}},
      };
    case Command::kWifiRxCheck:
      return {
          {Op::SeqCheck, {mode_idx, a.at(0), a.at(1), ctrl_status_addr(m, CtrlWord::kDupFlag)}},
      };
    case Command::kWifiTxFragment:
      return {
          {Op::FragmentWifi, {crypt, scratch, a.at(1), a.at(0)}},
          {Op::AssembleWifi, {tmpl, scratch, tx}},
          {Op::HcsAppend16, {tx, mac::wifi::kHdrBytes}},
          {Op::CsmaAccessWifi, {mode_idx, a.at(2)}},
          {Op::TxFrameWifi, {tx, mode_idx, 1 /* append FCS */}},
      };
    case Command::kWifiTxFragmentProtected:
      // The fragment a CTS (or a mid-burst ACK) just released: 802.11's
      // protected exchange is SIFS-separated throughout (RTS -SIFS- CTS
      // -SIFS- DATA -SIFS- ACK, and likewise DATA -SIFS- ACK -SIFS- DATA
      // inside a fragment burst), so no channel-access op — the frame is
      // anchored SIFS after the releasing frame's latched rx-end (TxFrame
      // opts bit1 + the explicit anchor words) and the PHY's carrier gate
      // defers it if the air is still occupied. Re-contending with
      // DIFS+backoff here would outlive the NAV the release armed at the
      // hidden stations and forfeit the protection.
      return {
          {Op::FragmentWifi, {crypt, scratch, a.at(1), a.at(0)}},
          {Op::AssembleWifi, {tmpl, scratch, tx}},
          {Op::HcsAppend16, {tx, mac::wifi::kHdrBytes}},
          {Op::TxFrameWifiAnchored,
           {tx, mode_idx, 1 | 2 /* append FCS, SIFS anchor */, a.at(2), a.at(3)}},
      };
    case Command::kWifiSendRts:
      // The RTS is all header, so the CPU built it in the Scratch page
      // (control-plane data, like the header template); the hardware adds
      // the FCS, contends for the medium and transmits (§2.3.2.2 #10).
      return {
          {Op::CsmaAccessWifi, {mode_idx, a.at(0)}},
          {Op::TxFrameWifi, {scratch, mode_idx, 1 /* append FCS */}},
      };
    case Command::kWifiTxFragmentPcf:
      // Polled (contention-free) transmission: same datapath as the DCF
      // fragment, but the access op waits only SIFS after the poll
      // (§2.3.2.1 #5 — "Polling Access is used in WiFi, in its PCF mode").
      return {
          {Op::FragmentWifi, {crypt, scratch, a.at(1), a.at(0)}},
          {Op::AssembleWifi, {tmpl, scratch, tx}},
          {Op::HcsAppend16, {tx, mac::wifi::kHdrBytes}},
          {Op::PcfRespondWifi, {mode_idx}},
          {Op::TxFrameWifi, {tx, mode_idx, 1}},
      };
    case Command::kWifiSendNull:
      // Polled with an empty queue: the CPU-built Null header answers the
      // poll so the point coordinator can move on.
      return {
          {Op::HcsAppend16, {scratch, mac::wifi::kHdrBytes}},
          {Op::PcfRespondWifi, {mode_idx}},
          {Op::TxFrameWifi, {scratch, mode_idx, 1}},
      };
    case Command::kWifiRxExtract:
      return {
          {Op::ExtractWifi, {rx, rx_scratch}},
          {Op::DefragAppendWifi, {rx_scratch, defrag, a.at(0)}},
      };
    case Command::kWifiRxFinish:
      return {
          {Op::DecryptRc4, {defrag, rx_out, a.at(0), 0}},
      };

    // -------------------------------------------------------------- UWB
    case Command::kUwbPrepareTx:
      return {
          {Op::SeqAssign, {mode_idx, seq_out}},
      };
    case Command::kUwbEncrypt:
      return {
          {Op::EncryptAes, {raw, crypt, a.at(0), a.at(1)}},
      };
    case Command::kUwbTxFragment:
      return {
          {Op::FragmentUwb, {crypt, scratch, a.at(1), a.at(0)}},
          {Op::AssembleUwb, {tmpl, scratch, tx}},
          {Op::HcsAppend16, {tx, mac::uwb::kHdrBytes}},
          {Op::TdmaAccessUwb, {mode_idx, a.at(2), a.at(3)}},
          {Op::TxFrameUwb, {tx, mode_idx, 1}},
      };
    case Command::kUwbTxFragmentCap:
      // Contention access period variant (802.15.3 CAP, thesis §2.3.2.1 #4:
      // "For UWB, it is also one of two access mechanisms").
      return {
          {Op::FragmentUwb, {crypt, scratch, a.at(1), a.at(0)}},
          {Op::AssembleUwb, {tmpl, scratch, tx}},
          {Op::HcsAppend16, {tx, mac::uwb::kHdrBytes}},
          {Op::CsmaAccessUwb, {mode_idx, a.at(2)}},
          {Op::TxFrameUwb, {tx, mode_idx, 1}},
      };
    case Command::kUwbRxExtract:
      return {
          {Op::ExtractUwb, {rx, rx_scratch}},
          {Op::DefragAppendUwb, {rx_scratch, defrag, a.at(0)}},
      };
    case Command::kUwbRxFinish:
      return {
          {Op::DecryptAes, {defrag, rx_out, a.at(0), a.at(1)}},
      };

    // ------------------------------------------------------------ WiMAX
    case Command::kWimaxClassify:
      return {
          {Op::Classify, {a.at(0), cid_out}},
      };
    case Command::kWimaxArqTag:
      // ARQ window probe, issued on its own: when the window is full the
      // controller retries just this op on its timer, so the stall leaves no
      // datapath side effects (a combined tag+encrypt+pack request would
      // re-append the SDU to the packing page on every retry).
      return {
          {Op::ArqTag, {a.at(0), arq_out}},
      };
    case Command::kWimaxEncryptPack: {
      // Per-SDU datapath, run only after the ARQ tag was granted: DES
      // encrypt; optionally append to the packing staging page (subheaders
      // stay in the clear).
      std::vector<OpCall> ops = {
          {Op::EncryptDes, {raw, crypt, a.at(0), 0}},
      };
      if (a.at(1) != 0) {  // pack_flag: append (Crypt -> Scratch).
        const Word fc_fsn = 0;  // FC=unfragmented; FSN patched by control sw.
        ops.push_back({Op::PackAppend, {crypt, scratch, fc_fsn, a.at(2)}});
      }
      return ops;
    }
    case Command::kWimaxTxMpdu: {
      // The GMH template (with subheaders) was prepared by the CPU; the body
      // page is Scratch when packing, Crypt otherwise — the control software
      // passes the right source via the template convention: body page id in
      // args[3] (0 = Crypt, 1 = Scratch).
      const u32 body = a.size() > 3 && a.at(3) != 0 ? scratch : crypt;
      std::vector<OpCall> ops = {
          {Op::AssembleWimax, {tmpl, body, tx}},
          {Op::HcsPatch8, {tx}},
          {Op::TdmaAccessWimax, {mode_idx, a.at(0), a.at(1)}},
          {Op::TxFrameWimax, {tx, mode_idx, a.at(2) & 1}},
      };
      return ops;
    }
    case Command::kWimaxRxExtract:
      return {
          {Op::ExtractWimax, {rx, rx_scratch}},
      };
    case Command::kWimaxRxSingle:
      return {
          {Op::DecryptDes, {rx_scratch, rx_out, a.at(0), 0}},
      };
    case Command::kWimaxRxSdu:
      return {
          {Op::PackExtract, {rx_scratch, defrag, a.at(0), pack_out}},
          {Op::DecryptDes, {defrag, rx_out, a.at(1), 0}},
      };
    case Command::kWimaxArqFeedback:
      return {
          {Op::ArqFeedback, {a.at(0), a.at(1), arq_out}},
      };
  }
  return {};
}

u32 cDRMP::Request_RHCP_Service(Mode mode, Command cmd, const std::vector<Word>& args,
                                u32* instr_cost) {
  return Request_RHCP_Service_Ops(mode, expand(mode, cmd, args), instr_cost);
}

u32 cDRMP::Request_RHCP_Service_Ops(Mode mode, std::vector<irc::OpCall> ops,
                                    u32* instr_cost) {
  irc::ServiceRequest req;
  req.ops = std::move(ops);
  req.from_cpu = true;
  req.tag = next_tag_++;
  irc::write_super_op_code(*mem_, mode, req);
  if (instr_cost != nullptr) {
    // Cost model: clearing the interface registers plus one store per word
    // written (Fig. 4.3's Clear_Interface_registers + switch body).
    u32 words = 2;
    for (const auto& call : req.ops) words += 1 + static_cast<u32>(call.args.size());
    *instr_cost = 6 + 2 * words;
  }
  return req.tag;
}

}  // namespace drmp::api
