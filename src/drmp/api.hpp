// The DRMP programming API (thesis §4.1.2, Figs. 4.2-4.4).
//
// "The platform should have a clear Application Programming Interface that
// allows programmers to use the available hardware resources for MAC
// implementation" (§3.2.2). The API mirrors the pseudo-C++ of Fig. 4.2/4.3:
// a ProtocolState object per mode holding the state carried across
// interrupt-handler invocations, and a cDRMP object whose
// Request_RHCP_Service formats a super-op-code into the memory-mapped
// interface registers and rings the doorbell.
#pragma once

#include <vector>

#include "hw/ctrl_layout.hpp"
#include "hw/memory_map.hpp"
#include "hw/packet_memory.hpp"
#include "irc/task_handler.hpp"
#include "mac/protocol.hpp"

namespace drmp::api {

/// Fig. 4.2 — "A ProtocolState Class object maintains the state of a
/// protocol for use across interrupt-calls."
struct ProtocolState {
  u32 my_state = 0;                     ///< Protocol state-machine variable.
  u8 my_id = 0;                         ///< Protocol ID (1, 2 or 3).
  u32 base_pointer = 0;                 ///< Base address in packet memory.
  u32 fragmentation_threshold = 1024;   ///< Bytes per fragment (word-aligned).
  u32 MacHdrLng = 0;                    ///< Size of header.
  u32 PGSIZE = hw::kPageWords * 4;      ///< Page size in packet memory.
  u32 rx_pdu_count = 0;                 ///< Received packet count.
  u32 tx_pdu_count = 0;                 ///< Transmitted packet count.
  u32 psdu_size = 0;                    ///< Size of packet to be sent.
  u32 fragments_total = 0;
  u32 fragments_counter = 0;
  u32 next_fragment_size = 0;
  u32 last_fragment_size = 0;
  u32 retry_count = 0;   ///< Per-fragment retry counter (resets on each ACK).
  u32 msdu_retries = 0;  ///< Cumulative retries across the whole MSDU.
  u32 seq_num = 0;
  // Fixed base address and page size make these pointers static (Fig. 4.2).
  u32 msdu_pointer = 0;   ///< Pointer to the packet to be sent (Raw page).
  u32 epointer = 0;       ///< Pointer to data to be encrypted.
  u32 fpointer = 0;       ///< Pointer to data to be fragmented.

  /// Checkpoint support (sim/checkpoint.hpp): every field — this object IS
  /// the durable half of a protocol controller's state machine.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(my_state);
    ar.io(my_id);
    ar.io(base_pointer);
    ar.io(fragmentation_threshold);
    ar.io(MacHdrLng);
    ar.io(PGSIZE);
    ar.io(rx_pdu_count);
    ar.io(tx_pdu_count);
    ar.io(psdu_size);
    ar.io(fragments_total);
    ar.io(fragments_counter);
    ar.io(next_fragment_size);
    ar.io(last_fragment_size);
    ar.io(retry_count);
    ar.io(msdu_retries);
    ar.io(seq_num);
    ar.io(msdu_pointer);
    ar.io(epointer);
    ar.io(fpointer);
  }
};

/// High-level command codes (Fig. 4.3: "the programmer will simply choose one
/// of the many command codes ... The command codes are provided as part of
/// the API, and correspond to a particular service request for the hardware
/// co-processor.").
enum class Command : u8 {
  // WiFi.
  kWifiPrepareTx,    ///< args: []             -> SeqAssign (seq becomes the WEP IV).
  kWifiEncrypt,      ///< args: [iv]           -> RC4 encrypt Raw -> Crypt.
  kWifiTxFragment,   ///< args: [frag_idx, threshold, retry] -> frag+asm+hcs+csma+tx.
  kWifiTxFragmentProtected,  ///< args: [frag_idx, threshold, anchor_lo, anchor_hi]
                             ///< -> frag+asm+hcs+sifs+tx: data released by a CTS
                             ///< (or, in a fragment burst, by the previous
                             ///< fragment's ACK) flies SIFS after it. The anchor
                             ///< is the releasing frame's rx-end, read from the
                             ///< CtrlWord::kRespRxEndLo/Hi latch at arm time so
                             ///< a bystander frame cannot re-anchor the data.
  kWifiSendRts,      ///< args: [retry] -> csma + tx of the CPU-built RTS (Scratch page).
  kWifiTxFragmentPcf,///< args: [frag_idx, threshold] -> frag+asm+hcs+pcf+tx (polled).
  kWifiSendNull,     ///< args: [] -> hcs + pcf + tx of the CPU-built Null header.
  kWifiRxCheck,      ///< args: [src_key, seq_frag] -> SeqCheck duplicate detection.
  kWifiRxExtract,    ///< args: [first_frag]   -> extract body + defrag append.
  kWifiRxFinish,     ///< args: [iv]           -> RC4 decrypt of reassembly.
  // UWB.
  kUwbPrepareTx,     ///< args: []             -> SeqAssign (MSDU number = nonce).
  kUwbEncrypt,       ///< args: [nonce_lo, nonce_hi] -> AES-CTR Raw -> Crypt.
  kUwbTxFragment,    ///< args: [frag_idx, threshold, slot_offset_us, slot_period_us].
  kUwbTxFragmentCap, ///< args: [frag_idx, threshold, retry] — CAP (CSMA) access.
  kUwbRxExtract,     ///< args: [first_frag].
  kUwbRxFinish,      ///< args: [nonce_lo, nonce_hi].
  // WiMAX.
  kWimaxClassify,    ///< args: [meta].
  kWimaxArqTag,      ///< args: [cid] -> ArqTag only (probe the window; no side effects).
  kWimaxEncryptPack, ///< args: [iv, pack_flag, first_flag] -> DES + optional pack append.
  kWimaxTxMpdu,      ///< args: [slot_offset_us, frame_period_us, with_crc, use_pack_page].
  kWimaxRxExtract,   ///< args: [] -> extract payload region.
  kWimaxRxSingle,    ///< args: [iv] -> decrypt single-SDU payload.
  kWimaxRxSdu,       ///< args: [index, iv] -> unpack SDU + decrypt.
  kWimaxArqFeedback, ///< args: [cid, cumulative_bsn].
};

/// Fig. 4.3 — cDRMP: "contains the state of all three protocol modes as
/// ProtocolState variables, and the API-function used to request Hardware
/// Service."
class cDRMP {
 public:
  explicit cDRMP(hw::PacketMemory* mem) : mem_(mem) {
    PSA.my_id = 1;
    PSB.my_id = 2;
    PSC.my_id = 3;
    PSA.base_pointer = hw::page_base(Mode::A, hw::Page::Ctrl);
    PSB.base_pointer = hw::page_base(Mode::B, hw::Page::Ctrl);
    PSC.base_pointer = hw::page_base(Mode::C, hw::Page::Ctrl);
  }

  ProtocolState PSA;
  ProtocolState PSB;
  ProtocolState PSC;

  ProtocolState& ps(Mode m) {
    switch (m) {
      case Mode::A: return PSA;
      case Mode::B: return PSB;
      case Mode::C: return PSC;
    }
    return PSA;
  }

  /// Expands a command code into its op-code sequence (the device-driver
  /// body of Fig. 4.3's switch).
  static std::vector<irc::OpCall> expand(Mode mode, Command cmd,
                                         const std::vector<Word>& args);

  /// Formats the super-op-code into the interface registers and rings the
  /// doorbell (Table 3.2 software->hardware path). Returns the request tag.
  /// Also returns the instruction-count estimate for the CPU cost model.
  u32 Request_RHCP_Service(Mode mode, Command cmd, const std::vector<Word>& args,
                           u32* instr_cost = nullptr);

  /// Low-level variant taking an explicit op list.
  u32 Request_RHCP_Service_Ops(Mode mode, std::vector<irc::OpCall> ops,
                               u32* instr_cost = nullptr);

  /// Checkpoint support (sim/checkpoint.hpp).
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(PSA);
    ar.io(PSB);
    ar.io(PSC);
    ar.io(next_tag_);
  }

 private:
  hw::PacketMemory* mem_;
  u32 next_tag_ = 1;
};

}  // namespace drmp::api
