#include "drmp/device.hpp"

#include <cassert>
#include <cmath>

#include "mac/uwb_ctrl.hpp"
#include "mac/wifi_ctrl.hpp"
#include "mac/wimax_ctrl.hpp"
#include "sim/checkpoint.hpp"

namespace drmp {

namespace cfgns = rfu::cfg;

DrmpConfig DrmpConfig::standard_three_mode() {
  DrmpConfig c;
  // Mode A: WiFi.
  {
    auto& m = c.modes[0];
    m.enabled = true;
    m.ident.proto = mac::Protocol::WiFi;
    m.ident.self_addr = 0x0000'11'22'33'44'55ull & 0xFFFFFFFFFFFFull;
    m.ident.peer_addr = 0x0A0B0C0D0E0Full;
    m.ident.frag_threshold = 1024;
    m.key = {0x57, 0x69, 0x46, 0x69, 0x4B, 0x65, 0x79, 0x21,
             0x57, 0x69, 0x46, 0x69, 0x4B, 0x65, 0x79, 0x21};
  }
  // Mode B: WiMAX.
  {
    auto& m = c.modes[1];
    m.enabled = true;
    m.ident.proto = mac::Protocol::WiMax;
    m.ident.basic_cid = 0x1234;
    m.ident.tdma_offset_us = 500.0;
    m.ident.tdma_period_us = 5000.0;  // 5 ms TDD frame.
    m.ident.frag_threshold = 1024;
    m.key = {0x57, 0x69, 0x4D, 0x61, 0x78, 0x21, 0x21, 0x21};  // DES: 8 bytes.
  }
  // Mode C: UWB.
  {
    auto& m = c.modes[2];
    m.enabled = true;
    m.ident.proto = mac::Protocol::Uwb;
    m.ident.pnid = 0xBEEF;
    m.ident.dev_id = 1;
    m.ident.peer_dev_id = 2;
    m.ident.tdma_offset_us = 1000.0;
    m.ident.tdma_period_us = 8000.0;  // 8 ms superframe, CTA at +1 ms.
    m.ident.frag_threshold = 1024;
    m.key = {0x55, 0x77, 0x62, 0x4B, 0x65, 0x79, 0x21, 0x21,
             0x55, 0x77, 0x62, 0x4B, 0x65, 0x79, 0x21, 0x21};
  }
  return c;
}

DrmpConfig DrmpConfig::for_station(int station_id) const {
  assert(station_id >= 1 && "fleet station ids start at 1");
  DrmpConfig c = *this;
  const u64 sid = static_cast<u64>(station_id);
  c.backoff_seed = static_cast<u16>((backoff_seed ^ (0x9E37u * sid)) | 1u);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    auto& ident = c.modes[i].ident;
    if (!c.modes[i].enabled) continue;
    switch (ident.proto) {
      case mac::Protocol::WiFi:
        // Locally-administered unicast addresses, one lab per station.
        ident.self_addr = 0x0200'00'00'00'00ull | (sid << 8) | 0x01;
        ident.peer_addr = 0x0200'00'00'00'00ull | (sid << 8) | 0x02;
        break;
      case mac::Protocol::Uwb:
        ident.pnid = static_cast<u16>(0xB000u + sid);
        ident.dev_id = 1;
        ident.peer_dev_id = 2;
        break;
      case mac::Protocol::WiMax:
        ident.basic_cid = static_cast<u16>(0x1000u + sid);
        break;
    }
    if (ident.tdma_period_us > 0.0) {
      // Stagger slot allocations across stations inside the period: 16
      // slots of period/16, so fleets of up to 16 stations that do share a
      // medium keep disjoint allocations (slots wrap beyond that).
      const double step = ident.tdma_period_us / 16.0;
      const double slot = static_cast<double>((sid - 1) % 16);
      ident.tdma_offset_us = std::fmod(ident.tdma_offset_us + slot * step,
                                       ident.tdma_period_us);
    }
  }
  return c;
}

DrmpDevice::DrmpDevice(sim::Scheduler& sched, DrmpConfig cfg, int station_id)
    : cfg_(std::move(cfg)), station_id_(station_id), tb_(cfg_.arch_freq_hz),
      trace_(cfg_.trace_enabled), sched_(&sched) {
  bus_ = std::make_unique<hw::PacketBus>(mem_, &stats_);

  irc::Irc::Env irc_env;
  irc_env.bus = bus_.get();
  irc_env.mem = &mem_;
  irc_env.stats = &stats_;
  irc_env.trace = &trace_;
  irc_ = std::make_unique<irc::Irc>(irc_env);
  irc_->rfu_table().set_queue_policy(cfg_.rfu_queue_priority
                                         ? irc::RfuTable::QueuePolicy::Priority
                                         : irc::RfuTable::QueuePolicy::Fcfs);

  cpu::CpuModel::Config cpu_cfg;
  cpu_cfg.cpu_freq_hz = cfg_.cpu_freq_hz;
  cpu_cfg.arch_freq_hz = cfg_.arch_freq_hz;
  cpu_cfg.preemptive = cfg_.cpu_preemptive;
  cpu_ = std::make_unique<cpu::CpuModel>(cpu_cfg);
  cpu_->attach_stats(&stats_);

  api_ = std::make_unique<api::cDRMP>(&mem_);

  load_reconfig_blobs();
  build_rfus(sched);

  // Event handler.
  EventHandler::Env eh_env;
  eh_env.irc = irc_.get();
  eh_env.mem = &mem_;
  for (std::size_t i = 0; i < kNumModes; ++i) {
    eh_env.rx_bufs[i] = &rx_bufs_[i];
    eh_env.idents[i] = cfg_.modes[i].ident;
    eh_env.enabled[i] = cfg_.modes[i].enabled;
    eh_env.nav[i] = &navs_[i];
  }
  eh_env.tb = &tb_;
  eh_env.stats = &stats_;
  event_handler_ = std::make_unique<EventHandler>(eh_env);
  event_handler_->raise_irq = [this](Mode m, irc::IrqEvent ev, Word param) {
    irc_->irq_raise(m, ev, param);  // Memory-mapped source registers.
    cpu_->raise_hw_interrupt(m, static_cast<u32>(ev), param);
  };

  // Quiescence wiring: frame deliveries wake the Event Handler, and the
  // trace recorder (when enabled) pins the bus awake — active task handlers
  // record state channels against its cycle counter.
  bus_->set_trace_gate(&trace_);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    const Mode m = mode_from_index(i);
    rx_bufs_[i].on_deliver = [this, i, m] {
      event_handler_->wake_self();
      // Delivery-time snoop: overheard reservations must arm (and CF-End
      // truncations land, and response anchors latch) at frame end, not
      // when the drain request finally runs.
      event_handler_->rx_snoop(m, rx_bufs_[i].last_delivered().bytes);
    };
  }

  // Completion routing: CPU requests -> ReqDone interrupt; Event Handler
  // requests -> back to the Event Handler.
  irc_->on_complete = [this](Mode m, const irc::ServiceRequest& req) {
    if (req.from_cpu) {
      irc_->irq_raise(m, irc::IrqEvent::ReqDone, req.tag);
      cpu_->raise_hw_interrupt(m, static_cast<u32>(irc::IrqEvent::ReqDone), req.tag);
    } else {
      event_handler_->on_request_complete(m, req.tag);
    }
  };

  // Protocol controllers.
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!cfg_.modes[i].enabled) continue;
    const Mode m = mode_from_index(i);
    ctrl::CtrlEnv env;
    env.mode = m;
    env.ident = cfg_.modes[i].ident;
    env.api = api_.get();
    env.mem = &mem_;
    env.cpu = cpu_.get();
    env.tb = &tb_;
    switch (env.ident.proto) {
      case mac::Protocol::WiFi:
        ctrls_[i] = std::make_unique<ctrl::WifiCtrl>(env);
        break;
      case mac::Protocol::WiMax:
        ctrls_[i] = std::make_unique<ctrl::WimaxCtrl>(env);
        break;
      case mac::Protocol::Uwb:
        ctrls_[i] = std::make_unique<ctrl::UwbCtrl>(env);
        break;
    }
    ctrl::ProtocolCtrl* c = ctrls_[i].get();
    c->on_deliver = [this, m](const Bytes& msdu) {
      if (on_deliver) on_deliver(m, msdu);
    };
    c->on_tx_complete = [this, m](bool ok, u32 retries) {
      if (on_tx_complete) on_tx_complete(m, ok, retries);
    };
    c->rx_release = [this, m] { event_handler_->release(m); };
    cpu_->set_handler(m, [c](const cpu::IsrContext& ctx) { return c->on_isr(ctx); });
  }

  // Scheduler registration (deterministic tick order: arbitration first,
  // then controllers, RFUs, CPU and the event handler).
  sched.add(*bus_, "bus");
  sched.add(*irc_, "irc");
  for (rfu::Rfu* r : all_rfus_) sched.add(*r, "rfu." + r->name());
  sched.add(*cpu_, "cpu");
  sched.add(*event_handler_, "event_handler");
}

void DrmpDevice::load_reconfig_blobs() {
  // Crypto keys per cipher state: each enabled mode installs the blob for the
  // cipher its protocol uses.
  for (const auto& mc : cfg_.modes) {
    if (!mc.enabled) continue;
    switch (mc.ident.proto) {
      case mac::Protocol::WiFi:
        rmem_.load_blob(rfu::kCryptoRfu, cfgns::kCryptoRc4,
                        rfu::CryptoRfu::make_config_blob(cfgns::kCryptoRc4, mc.key));
        break;
      case mac::Protocol::Uwb:
        rmem_.load_blob(rfu::kCryptoRfu, cfgns::kCryptoAes,
                        rfu::CryptoRfu::make_config_blob(cfgns::kCryptoAes, mc.key));
        break;
      case mac::Protocol::WiMax:
        rmem_.load_blob(rfu::kCryptoRfu, cfgns::kCryptoDes,
                        rfu::CryptoRfu::make_config_blob(cfgns::kCryptoDes, mc.key));
        break;
    }
  }
  // Header format descriptors.
  for (u8 s : {cfgns::kProtoWifi, cfgns::kProtoUwb, cfgns::kProtoWimax}) {
    rmem_.load_blob(rfu::kHeaderRfu, s, rfu::HeaderRfu::make_config_blob(s));
  }
  // ARQ window parameters.
  rmem_.load_blob(rfu::kArqRfu, cfgns::kDefaultState, rfu::ArqRfu::make_config_blob());
  // Classifier rules: flow meta 1 -> the WiMAX mode's basic CID.
  std::vector<rfu::ClassifierRfu::Rule> rules;
  for (const auto& mc : cfg_.modes) {
    if (mc.enabled && mc.ident.proto == mac::Protocol::WiMax) {
      rules.push_back({1, mc.ident.basic_cid});
    }
  }
  rmem_.load_blob(rfu::kClassifierRfu, cfgns::kDefaultState,
                  rfu::ClassifierRfu::make_config_blob(rules));
}

void DrmpDevice::build_rfus(sim::Scheduler& /*sched*/) {
  rfu::Rfu::Env env;
  env.bus = bus_.get();
  env.rmem = &rmem_;
  env.stats = &stats_;
  env.timebase = &tb_;

  crypto_ = std::make_unique<rfu::CryptoRfu>(env);
  hdr_check_ = std::make_unique<rfu::HdrCheckRfu>(env);
  fcs_ = std::make_unique<rfu::FcsRfu>(env);
  frag_ = std::make_unique<rfu::FragRfu>(env);
  defrag_ = std::make_unique<rfu::DefragRfu>(env);
  header_ = std::make_unique<rfu::HeaderRfu>(env);
  tx_ = std::make_unique<rfu::TxRfu>(env);
  rx_ = std::make_unique<rfu::RxRfu>(env);
  ack_ = std::make_unique<rfu::AckRfu>(env);
  backoff_ = std::make_unique<rfu::BackoffRfu>(env);
  pack_ = std::make_unique<rfu::PackRfu>(env);
  arq_ = std::make_unique<rfu::ArqRfu>(env);
  classifier_ = std::make_unique<rfu::ClassifierRfu>(env);
  seq_ = std::make_unique<rfu::SeqRfu>(env);

  // Hard-wired connections (secondary triggers, buffers, media).
  std::array<phy::TxBuffer*, kNumModes> txb{};
  std::array<phy::RxBuffer*, kNumModes> rxb{};
  for (std::size_t i = 0; i < kNumModes; ++i) {
    txb[i] = &tx_bufs_[i];
    rxb[i] = &rx_bufs_[i];
  }
  tx_->wire(fcs_.get(), txb, &tb_, rx_.get());
  rx_->wire(fcs_.get(), rxb);
  ack_->wire(rx_.get(), txb, &tb_);
  backoff_->seed(cfg_.backoff_seed);

  // Sequence moduli per mode: WiFi 4096 (12-bit), UWB 512 (9-bit),
  // WiMAX 64 (6-bit FSN).
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!cfg_.modes[i].enabled) continue;
    switch (cfg_.modes[i].ident.proto) {
      case mac::Protocol::WiFi: seq_->set_modulus(i, 4096); break;
      case mac::Protocol::Uwb: seq_->set_modulus(i, 512); break;
      case mac::Protocol::WiMax: seq_->set_modulus(i, 64); break;
    }
  }

  all_rfus_ = {crypto_.get(), hdr_check_.get(), fcs_.get(),       frag_.get(),
               defrag_.get(), header_.get(),    tx_.get(),        rx_.get(),
               ack_.get(),    backoff_.get(),   pack_.get(),      arq_.get(),
               classifier_.get(), seq_.get()};
  for (rfu::Rfu* r : all_rfus_) irc_->register_rfu(r);
}

void DrmpDevice::attach_medium(Mode m, phy::Medium* medium) {
  const std::size_t i = index(m);
  media_[i] = medium;
  phy_txs_[i] = std::make_unique<phy::PhyTx>(tx_bufs_[i], *medium, station_id_);
  phy_rxs_[i] = std::make_unique<phy::PhyRx>(rx_bufs_[i], station_id_);
  medium->attach(*phy_rxs_[i], station_id_);
  tx_bufs_[i].bind_arena(&medium->frame_arena());  // Recycle retired frames.
  event_handler_->attach_medium(m, medium);  // NAV reservations need its clock.
  sched_->add(*phy_txs_[i], "phy_tx." + std::string(to_string(m)));
  phy::PhyTx* ptx = phy_txs_[i].get();
  tx_bufs_[i].on_push = [ptx] { ptx->wake_self(); };  // Quiescence wake.
  std::array<const mac::NavTimer*, kNumModes> navs{};
  std::array<bool, kNumModes> eifs{};
  for (std::size_t mi = 0; mi < kNumModes; ++mi) {
    navs[mi] = &navs_[mi];
    navs_[mi].subscribe(*backoff_);  // NAV arms (and resets) invalidate sleeps.
    eifs[mi] = cfg_.modes[mi].enabled && cfg_.modes[mi].ident.eifs_enabled;
  }
  backoff_->wire(media_, &tb_, navs, station_id_, eifs);
}

void DrmpDevice::set_flight_recorder(obs::FlightRecorder* rec, u16 track) {
  backoff_->set_recorder(rec, track);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    navs_[i].set_recorder(rec, track);
    if (phy_txs_[i] != nullptr) phy_txs_[i]->set_recorder(rec, track);
  }
}

void DrmpDevice::host_send(Mode m, Bytes msdu) {
  assert(ctrls_[index(m)] != nullptr && "host_send on a disabled mode");
  ctrls_[index(m)]->host_enqueue(std::move(msdu));
}


template <class Ar>
void DrmpDevice::persist_device(Ar& ar) {
  using sim::snap::close_record;
  using sim::snap::open_record;
  open_record(ar, "mem");
  ar.io(mem_);
  close_record(ar);
  open_record(ar, "stats");
  ar.io(stats_);
  close_record(ar);
  open_record(ar, "bus");
  ar.io(*bus_);
  close_record(ar);
  open_record(ar, "irc");
  ar.io(*irc_);
  close_record(ar);
  open_record(ar, "cpu");
  ar.io(*cpu_);
  close_record(ar);
  open_record(ar, "api");
  ar.io(*api_);
  close_record(ar);
  open_record(ar, "event_handler");
  ar.io(*event_handler_);
  close_record(ar);
  open_record(ar, "phy");
  ar.io(tx_bufs_);
  ar.io(rx_bufs_);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (phy_txs_[i] != nullptr) ar.io(*phy_txs_[i]);
    if (phy_rxs_[i] != nullptr) ar.io(*phy_rxs_[i]);
  }
  ar.io(navs_);
  close_record(ar);
  open_record(ar, "rfus");
  for (rfu::Rfu* r : all_rfus_) {
    if constexpr (Ar::kLoading) {
      r->load_state(ar);
    } else {
      r->save_state(ar);
    }
  }
  close_record(ar);
  open_record(ar, "ctrl");
  for (auto& c : ctrls_) {
    if (c == nullptr) continue;
    if constexpr (Ar::kLoading) {
      c->load_state(ar);
    } else {
      c->save_state(ar);
    }
  }
  close_record(ar);
}

void DrmpDevice::save_state(sim::snap::Writer& w) { persist_device(w); }

void DrmpDevice::load_state(sim::snap::Reader& r) { persist_device(r); }

}  // namespace drmp
