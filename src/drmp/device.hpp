// DrmpDevice — the full DRMP SoC assembly (thesis Fig. 3.2 / Fig. 3.3):
// packet & reconfiguration memories, the single packet bus with its arbiter,
// the IRC with its seven controllers, the heterogeneous RFU pool, the per-
// mode translational buffers and PHY pipes, the Event Handler, the
// interrupt-driven CPU with the three protocol controllers, and the cDRMP
// programming API.
#pragma once

#include <array>
#include <memory>

#include "cpu/cpu_model.hpp"
#include "drmp/api.hpp"
#include "drmp/event_handler.hpp"
#include "hw/bus.hpp"
#include "hw/packet_memory.hpp"
#include "hw/reconfig_memory.hpp"
#include "irc/irc.hpp"
#include "mac/ctrl_common.hpp"
#include "mac/nav.hpp"
#include "phy/buffers.hpp"
#include "phy/phy_model.hpp"
#include "rfu/ack_rfu.hpp"
#include "rfu/arq_rfu.hpp"
#include "rfu/backoff_rfu.hpp"
#include "rfu/classifier_rfu.hpp"
#include "rfu/crc_rfus.hpp"
#include "rfu/crypto_rfu.hpp"
#include "rfu/defrag_rfu.hpp"
#include "rfu/frag_rfu.hpp"
#include "rfu/header_rfu.hpp"
#include "rfu/pack_rfu.hpp"
#include "rfu/rx_rfu.hpp"
#include "rfu/seq_rfu.hpp"
#include "rfu/tx_rfu.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace drmp {

struct ModeConfig {
  bool enabled = false;
  ctrl::ModeIdentity ident;
  Bytes key;  ///< Cipher key for this mode's protocol.
};

struct DrmpConfig {
  double arch_freq_hz = 200e6;  ///< Prototype frequency (thesis §5.4).
  double cpu_freq_hz = 40e6;
  /// §4.1.1 priority option: let a higher-priority mode's interrupt pre-empt
  /// a running lower-priority handler. Off in the thesis prototype.
  bool cpu_preemptive = false;
  /// Table 3.4 PrQreq option: freed RFUs wake the most urgent queued mode
  /// instead of the oldest. Off (FCFS) in the thesis prototype.
  bool rfu_queue_priority = false;
  u16 backoff_seed = 0xACE1;
  /// Per-cycle signal tracing (sim::TraceRecorder scopes). Fleet assemblers
  /// set this false so devices are born muted — no trace-channel work ever
  /// reaches the batched hot path, not even construction-time edges.
  bool trace_enabled = true;
  std::array<ModeConfig, kNumModes> modes{};

  /// The thesis prototype assignment: mode A = WiFi, B = WiMAX, C = UWB,
  /// with era-typical parameters.
  static DrmpConfig standard_three_mode();

  /// Derives the per-station variant of this config for fleet simulations:
  /// unique medium identities (WiFi MAC addresses, UWB piconet/device ids,
  /// WiMAX CIDs), a decorrelated backoff PRNG seed, and staggered TDMA
  /// allocations, all as pure functions of `station_id` so a fleet of any
  /// size is reproducible. `station_id` must be >= 1.
  DrmpConfig for_station(int station_id) const;
};

class DrmpDevice {
 public:
  /// `station_id` identifies this device on shared media.
  DrmpDevice(sim::Scheduler& sched, DrmpConfig cfg, int station_id);

  /// Connects a mode to its radio channel. Must be called for every enabled
  /// mode before traffic flows.
  void attach_medium(Mode m, phy::Medium* medium);

  // ---- Host-facing API ----
  void host_send(Mode m, Bytes msdu);
  std::function<void(Mode, const Bytes&)> on_deliver;
  std::function<void(Mode, bool success, u32 retries)> on_tx_complete;

  // ---- Introspection ----
  hw::PacketMemory& memory() { return mem_; }
  hw::ReconfigMemory& reconfig_memory() { return rmem_; }
  hw::PacketBus& bus() { return *bus_; }
  irc::Irc& irc() { return *irc_; }
  cpu::CpuModel& cpu() { return *cpu_; }
  EventHandler& event_handler() { return *event_handler_; }
  api::cDRMP& api() { return *api_; }
  ctrl::ProtocolCtrl& protocol_ctrl(Mode m) { return *ctrls_[index(m)]; }
  sim::StatsRegistry& stats() { return stats_; }
  sim::TraceRecorder& trace() { return trace_; }
  const sim::TimeBase& timebase() const { return tb_; }
  const DrmpConfig& config() const { return cfg_; }
  int station_id() const { return station_id_; }

  phy::TxBuffer& tx_buffer(Mode m) { return tx_bufs_[index(m)]; }
  phy::RxBuffer& rx_buffer(Mode m) { return rx_bufs_[index(m)]; }
  phy::PhyTx* phy_tx(Mode m) { return phy_txs_[index(m)].get(); }
  /// Per-mode NAV (virtual carrier sense) timer; armed by the Event Handler
  /// when the mode's ident.nav_enabled, consulted by the BackoffRfu.
  const mac::NavTimer& nav(Mode m) const { return navs_[index(m)]; }

  // RFU access for tests/benches.
  rfu::CryptoRfu& crypto_rfu() { return *crypto_; }
  rfu::HdrCheckRfu& hdr_check_rfu() { return *hdr_check_; }
  rfu::FcsRfu& fcs_rfu() { return *fcs_; }
  rfu::FragRfu& frag_rfu() { return *frag_; }
  rfu::DefragRfu& defrag_rfu() { return *defrag_; }
  rfu::HeaderRfu& header_rfu() { return *header_; }
  rfu::TxRfu& tx_rfu() { return *tx_; }
  rfu::RxRfu& rx_rfu() { return *rx_; }
  rfu::AckRfu& ack_rfu() { return *ack_; }
  rfu::BackoffRfu& backoff_rfu() { return *backoff_; }
  rfu::PackRfu& pack_rfu() { return *pack_; }
  rfu::ArqRfu& arq_rfu() { return *arq_; }
  rfu::ClassifierRfu& classifier_rfu() { return *classifier_; }
  rfu::SeqRfu& seq_rfu() { return *seq_; }

  /// All RFUs, for generic iteration (busy statistics, Table 5.1/5.2 rows).
  const std::vector<rfu::Rfu*>& rfus() const { return all_rfus_; }

  /// Routes this device's protocol-edge events (NAV arm/reset, backoff
  /// defers/EIFS, frame expiries) onto one flight-recorder track. Call after
  /// every enabled mode's attach_medium; null detaches.
  void set_flight_recorder(obs::FlightRecorder* rec, u16 track);

  // ---- Checkpoint support (sim/checkpoint.hpp) ----
  /// Serializes every mutable component of the SoC as nested named records
  /// (memory, stats, bus, IRC complex, CPU, API, event handler, PHY side,
  /// RFU pool, protocol controls). Legal only at a quiescent round edge;
  /// the shared medium is checkpointed by the owning Cell, not here.
  void save_state(sim::snap::Writer& w);
  void load_state(sim::snap::Reader& r);

 private:
  void build_rfus(sim::Scheduler& sched);
  void load_reconfig_blobs();
  template <class Ar>
  void persist_device(Ar& ar);

  DrmpConfig cfg_;
  int station_id_;
  sim::TimeBase tb_;
  sim::StatsRegistry stats_;
  sim::TraceRecorder trace_;

  hw::PacketMemory mem_;
  hw::ReconfigMemory rmem_;
  std::unique_ptr<hw::PacketBus> bus_;
  std::unique_ptr<irc::Irc> irc_;
  std::unique_ptr<cpu::CpuModel> cpu_;
  std::unique_ptr<api::cDRMP> api_;
  std::unique_ptr<EventHandler> event_handler_;

  std::array<phy::TxBuffer, kNumModes> tx_bufs_;
  std::array<phy::RxBuffer, kNumModes> rx_bufs_;
  std::array<std::unique_ptr<phy::PhyTx>, kNumModes> phy_txs_;
  std::array<std::unique_ptr<phy::PhyRx>, kNumModes> phy_rxs_;
  std::array<phy::Medium*, kNumModes> media_{};
  std::array<mac::NavTimer, kNumModes> navs_;
  sim::Scheduler* sched_ = nullptr;

  std::unique_ptr<rfu::CryptoRfu> crypto_;
  std::unique_ptr<rfu::HdrCheckRfu> hdr_check_;
  std::unique_ptr<rfu::FcsRfu> fcs_;
  std::unique_ptr<rfu::FragRfu> frag_;
  std::unique_ptr<rfu::DefragRfu> defrag_;
  std::unique_ptr<rfu::HeaderRfu> header_;
  std::unique_ptr<rfu::TxRfu> tx_;
  std::unique_ptr<rfu::RxRfu> rx_;
  std::unique_ptr<rfu::AckRfu> ack_;
  std::unique_ptr<rfu::BackoffRfu> backoff_;
  std::unique_ptr<rfu::PackRfu> pack_;
  std::unique_ptr<rfu::ArqRfu> arq_;
  std::unique_ptr<rfu::ClassifierRfu> classifier_;
  std::unique_ptr<rfu::SeqRfu> seq_;
  std::vector<rfu::Rfu*> all_rfus_;

  std::array<std::unique_ptr<ctrl::ProtocolCtrl>, kNumModes> ctrls_{};
};

}  // namespace drmp
