// The Event Handler (thesis §3.6.6): "a simple block that interprets Rx
// events. If a packet is to be received, it formats a service request. A
// service request to the IRC can thus originate from either the CPU or the
// Event-handler."
//
// Per mode it watches the Rx translational buffer; on a completed frame it
// submits the autonomous receive chain (drain + redundancy check + header
// parse), evaluates the results, triggers the AckRfu for frames that demand
// an immediate acknowledgement — all "without the software being aware of
// it" (§3.5) — and only then interrupts the CPU.
#pragma once

#include <array>
#include <functional>

#include "hw/ctrl_layout.hpp"
#include "hw/packet_memory.hpp"
#include "irc/irc.hpp"
#include "mac/ctrl_common.hpp"
#include "mac/nav.hpp"
#include "phy/buffers.hpp"
#include "phy/phy_model.hpp"
#include "sim/scheduler.hpp"

namespace drmp {

class EventHandler : public sim::Clockable {
 public:
  struct Env {
    irc::Irc* irc = nullptr;
    hw::PacketMemory* mem = nullptr;
    std::array<phy::RxBuffer*, kNumModes> rx_bufs{};
    std::array<ctrl::ModeIdentity, kNumModes> idents{};
    std::array<bool, kNumModes> enabled{};
    /// Per-mode NAV timers (virtual carrier sense); armed here from the
    /// duration fields of overheard frames when ident.nav_enabled.
    std::array<mac::NavTimer*, kNumModes> nav{};
    const sim::TimeBase* tb = nullptr;
    sim::StatsRegistry* stats = nullptr;
  };

  explicit EventHandler(Env env) : env_(std::move(env)) {}

  /// Gives the handler the mode's medium clock (NAV reservations are armed
  /// against it). Wired by DrmpDevice::attach_medium.
  void attach_medium(Mode m, phy::Medium* medium) { media_[index(m)] = medium; }

  /// Raise-interrupt hook (device wires it to the CPU model + IRC mirror).
  std::function<void(Mode, irc::IrqEvent, Word)> raise_irq;

  /// Routed by the device from Irc::on_complete for event-handler requests.
  void on_request_complete(Mode m, u32 tag);

  /// The CPU's protocol control releases the Rx page after consuming it.
  void release(Mode m);

  void tick() override;

  // ---- Quiescence contract (sim/scheduler.hpp) ----
  /// Skippable while every enabled mode is Idle with an empty Rx buffer.
  /// Frame deliveries (RxBuffer wake hook, wired by DrmpDevice), request
  /// completions and Rx-page releases wake it.
  Cycle quiescent_for() const override;
  void skip_idle(Cycle n) override;

  u32 rx_bad_frames(Mode m) const { return bad_[index(m)]; }
  u32 rx_acks_generated(Mode m) const { return acked_[index(m)]; }
  u32 rx_frames_handled(Mode m) const { return handled_[index(m)]; }
  u32 rx_ctss_generated(Mode m) const { return cts_[index(m)]; }

  /// Delivery-time snoop, invoked from the Rx buffer's deliver hook at frame
  /// end. Real MAC hardware acts the moment a frame's FCS checks out —
  /// waiting for the drain+parse service request would be too late, since
  /// that request queues behind this mode's own in-flight transmit request
  /// (one TH pair per mode, §3.6.1.1), exactly when the timing matters most.
  /// Modelled as dedicated comparators on the Rx translational buffer's PHY
  /// side (no bus traffic, CPU never sees the frames). Three latches:
  ///   * NAV arm from the duration of a clean frame addressed elsewhere
  ///     (ident.nav_enabled);
  ///   * NAV reset on CF-End / CF-End+CF-Ack (802.11 NAV truncation), with
  ///     the NavTimer waking sleeping deferrers so they re-evaluate
  ///     immediately;
  ///   * the response-anchor latch (CtrlWord::kRespRxEndLo/Hi): the rx-end
  ///     of a clean CTS/ACK addressed to *this* station, read by the
  ///     protocol control when it arms a SIFS-anchored follow-on.
  void rx_snoop(Mode m, const Bytes& frame);

  /// Checkpoint support (sim/checkpoint.hpp): the per-mode statecharts,
  /// request tags and counters. The env wiring and sink cache persist as
  /// wiring.
  template <class Ar>
  void persist(Ar& ar) {
    ar.io(st_);
    ar.io(tag_);
    ar.io(bad_);
    ar.io(acked_);
    ar.io(handled_);
    ar.io(cts_);
  }

 private:
  enum class St : u8 { Idle, WaitDrain, WaitAckGen, WaitCtsGen, WaitRelease };

  void submit_drain(Mode m);
  void evaluate_frame(Mode m);
  /// Reads the duration field of the WiFi frame still held in the Rx page
  /// (control or data layout); 0 when absent/unparsable.
  u16 rx_frame_duration_us(Mode m) const;
  Word status(Mode m, hw::CtrlWord w) const {
    return env_.mem->cpu_read(hw::ctrl_status_addr(m, w));
  }

  Env env_;
  std::array<phy::Medium*, kNumModes> media_{};
  std::array<St, kNumModes> st_{St::Idle, St::Idle, St::Idle};
  std::array<u32, kNumModes> tag_{};
  std::array<u32, kNumModes> bad_{};
  std::array<u32, kNumModes> acked_{};
  std::array<u32, kNumModes> handled_{};
  std::array<u32, kNumModes> cts_{};
  sim::BusyCounter* busy_stat_ = nullptr;  ///< Cached per-tick stats sink.
};

}  // namespace drmp
