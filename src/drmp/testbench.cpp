#include "drmp/testbench.hpp"

#include <cassert>

#include "crypto/aes128.hpp"
#include "crypto/des.hpp"
#include "crypto/rc4.hpp"
#include "mac/uwb_frames.hpp"
#include "mac/wifi_frames.hpp"
#include "mac/wimax_frames.hpp"

namespace drmp {

namespace {
constexpr int kPeerStationBase = 100;
}

Testbench::Testbench(DrmpConfig cfg) : cfg_(std::move(cfg)) {
  sched_ = std::make_unique<sim::Scheduler>(cfg_.arch_freq_hz);
  const sim::TimeBase tb(cfg_.arch_freq_hz);

  // Media first (their now() leads the rest of the cycle).
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!cfg_.modes[i].enabled) continue;
    media_[i] = std::make_unique<phy::Medium>(cfg_.modes[i].ident.proto, tb);
    sched_->add(*media_[i], "medium." + std::string(to_string(mode_from_index(i))));
  }

  device_ = std::make_unique<DrmpDevice>(*sched_, cfg_, /*station_id=*/1);
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!cfg_.modes[i].enabled) continue;
    device_->attach_medium(mode_from_index(i), media_[i].get());
  }

  // Scripted peers.
  for (std::size_t i = 0; i < kNumModes; ++i) {
    if (!cfg_.modes[i].enabled) continue;
    peers_[i] = std::make_unique<phy::ScriptedPeer>(*media_[i], device_->timebase(),
                                                    kPeerStationBase + static_cast<int>(i));
    peers_[i]->set_wifi_addr(mac::MacAddr::from_u64(cfg_.modes[i].ident.peer_addr));
    peers_[i]->set_uwb_ids(cfg_.modes[i].ident.pnid, cfg_.modes[i].ident.peer_dev_id);
    sched_->add(*peers_[i], "peer." + std::string(to_string(mode_from_index(i))));
  }

  device_->on_tx_complete = [this](Mode m, bool ok, u32 retries) {
    ++tx_done_[index(m)];
    if (ok) ++tx_ok_[index(m)];
    last_retries_[index(m)] = retries;
    tx_latencies_us_[index(m)].push_back(
        device_->timebase().cycles_to_us(sched_->now() - tx_start_cycle_[index(m)]));
  };
  device_->on_deliver = [this](Mode m, const Bytes& msdu) {
    delivered_[index(m)].push_back(msdu);
  };
}

void Testbench::send_async(Mode m, Bytes msdu) {
  if (tx_start_cycle_[index(m)] == 0) tx_start_cycle_[index(m)] = sched_->now();
  device_->host_send(m, std::move(msdu));
}

Testbench::TxOutcome Testbench::send_and_wait(Mode m, Bytes msdu, Cycle max_cycles) {
  TxOutcome out;
  const u32 done_before = tx_done_[index(m)];
  const u32 ok_before = tx_ok_[index(m)];
  out.start_cycle = sched_->now();
  tx_start_cycle_[index(m)] = sched_->now();
  device_->host_send(m, std::move(msdu));
  out.completed =
      sched_->run_until([&] { return tx_done_[index(m)] > done_before; }, max_cycles);
  out.end_cycle = sched_->now();
  out.success = out.completed && tx_ok_[index(m)] > ok_before;
  out.retries = last_retries_[index(m)];
  out.latency_us = device_->timebase().cycles_to_us(out.end_cycle - out.start_cycle);
  return out;
}

bool Testbench::wait_tx_count(Mode m, u32 n, Cycle max_cycles) {
  return sched_->run_until([&] { return tx_done_[index(m)] >= n; }, max_cycles);
}

std::vector<Bytes> Testbench::make_peer_frames(Mode m, const Bytes& msdu_plain,
                                               u32 seq) const {
  const auto& mc = cfg_.modes[index(m)];
  std::vector<Bytes> frames;
  const u32 thr = mc.ident.frag_threshold;

  // Encrypt the whole MSDU exactly as the device-side transmit flow does.
  Bytes enc = msdu_plain;
  switch (mc.ident.proto) {
    case mac::Protocol::WiFi: {
      Bytes iv_key;
      iv_key.push_back(static_cast<u8>(seq));
      iv_key.push_back(static_cast<u8>(seq >> 8));
      iv_key.push_back(static_cast<u8>(seq >> 16));
      iv_key.insert(iv_key.end(), mc.key.begin(), mc.key.end());
      crypto::Rc4 rc4(iv_key);
      rc4.process(enc);
      break;
    }
    case mac::Protocol::Uwb: {
      crypto::Aes128 aes(mc.key);
      u8 nonce[16] = {};
      for (int i = 0; i < 4; ++i) nonce[i] = static_cast<u8>(seq >> (8 * i));
      aes.ctr_process(std::span<const u8>(nonce, 16), enc);
      break;
    }
    case mac::Protocol::WiMax: {
      crypto::Des des(mc.key);
      const u32 cid = mc.ident.basic_cid;
      u8 iv[8] = {};
      for (int i = 0; i < 4; ++i) iv[i] = static_cast<u8>(cid >> (8 * i));
      const std::size_t whole = enc.size() - enc.size() % 8;
      des.cbc_encrypt(std::span<const u8>(iv, 8), std::span<u8>(enc.data(), whole));
      break;
    }
  }

  // WiMAX: one MPDU carries the whole payload (no fragmentation here).
  const u32 eff_thr = mc.ident.proto == mac::Protocol::WiMax
                          ? static_cast<u32>(std::max<std::size_t>(enc.size(), 1))
                          : thr;
  const u32 nfrags =
      std::max<u32>(1, (static_cast<u32>(enc.size()) + eff_thr - 1) / eff_thr);
  for (u32 k = 0; k < nfrags; ++k) {
    const std::size_t begin = static_cast<std::size_t>(k) * eff_thr;
    const std::size_t end = std::min<std::size_t>(begin + eff_thr, enc.size());
    const std::span<const u8> slice(enc.data() + begin, end - begin);
    switch (mc.ident.proto) {
      case mac::Protocol::WiFi: {
        mac::wifi::DataHeader h;
        h.fc.type = mac::wifi::FrameType::Data;
        h.fc.more_frag = (k + 1 < nfrags);
        h.fc.protected_frame = true;
        h.addr1 = mac::MacAddr::from_u64(mc.ident.self_addr);   // To the device.
        h.addr2 = mac::MacAddr::from_u64(mc.ident.peer_addr);   // From the peer.
        h.addr3 = h.addr2;
        h.seq_num = static_cast<u16>(seq);
        h.frag_num = static_cast<u8>(k);
        frames.push_back(mac::wifi::build_data_mpdu(h, slice));
        break;
      }
      case mac::Protocol::Uwb: {
        mac::uwb::Header h;
        h.type = mac::uwb::FrameType::Data;
        h.ack_policy = mac::uwb::AckPolicy::ImmAck;
        h.sec = true;
        h.pnid = mc.ident.pnid;
        h.dest_id = mc.ident.dev_id;
        h.src_id = mc.ident.peer_dev_id;
        h.msdu_num = static_cast<u16>(seq & 0x1FF);
        h.frag_num = static_cast<u8>(k);
        h.last_frag_num = static_cast<u8>(nfrags - 1);
        frames.push_back(mac::uwb::build_data_frame(h, slice));
        break;
      }
      case mac::Protocol::WiMax: {
        frames.push_back(mac::wimax::build_mpdu(mc.ident.basic_cid, {}, slice,
                                                /*with_crc=*/true, /*encrypted=*/true));
        break;
      }
    }
  }
  return frames;
}

Bytes Testbench::make_arq_feedback(u32 cumulative_bsn) const {
  Bytes payload;
  put_le32(payload, cumulative_bsn);
  return mac::wimax::build_mpdu(ctrl::kArqFeedbackCid, {}, payload, /*with_crc=*/true,
                                /*encrypted=*/false);
}

std::optional<Bytes> Testbench::inject_and_wait(Mode m, const Bytes& msdu_plain, u32 seq,
                                                Cycle max_cycles) {
  const auto frames = make_peer_frames(m, msdu_plain, seq);
  const std::size_t before = delivered_[index(m)].size();
  Cycle at = sched_->now() + 10;
  for (const auto& f : frames) {
    peers_[index(m)]->inject_frame(f, at);
    // Fragments are spaced by the frame air time plus protocol gaps; the
    // peer serializes them on the medium anyway.
    at += media_[index(m)]->frame_air_cycles(f.size()) + 4000;
  }
  const bool got = sched_->run_until(
      [&] { return delivered_[index(m)].size() > before; }, max_cycles);
  if (!got) return std::nullopt;
  return delivered_[index(m)].back();
}

}  // namespace drmp
