#!/usr/bin/env bash
# Regenerates tests/golden/contended4_timeline.txt from the current build.
#
# The golden file pins the flight recorder's protocol-domain timeline for the
# 4-station contended WiFi cell (seed 1, 3 MSDUs/station). Only regenerate it
# when the protocol timeline legitimately changed — that is a digest-visible
# change and the commit message must say so.
#
#   $ tools/regen_golden_timeline.sh [build_dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
cmake --build "$BUILD_DIR" --target obs_test -j"$(nproc)"
DRMP_REGEN_GOLDEN=1 "$BUILD_DIR"/obs_test \
  --gtest_filter='RecorderOn.TimelineMatchesGoldenFile'
echo "regenerated tests/golden/contended4_timeline.txt"
