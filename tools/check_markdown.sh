#!/usr/bin/env bash
# Markdown lint for the docs book: structural hygiene only — line length is
# deliberately exempt (tables and command transcripts earn their width).
# Checks the authored docs set — README.md and docs/*.md, the same files
# check_docs_links.sh covers (SNIPPETS.md/PAPERS.md are captured reference
# material and keep their upstream formatting) — for:
#   * trailing whitespace (renders as a forced line break on GitHub),
#   * hard tabs outside fenced code blocks (indent rendering differs),
#   * unbalanced ``` fences (everything after one renders as code),
#   * CRLF line endings and a missing trailing newline.
# Dead links and anchors are check_docs_links.sh's job.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
  [ -e "$doc" ] || continue

  if grep -nE '[[:space:]]+$' "$doc" >/dev/null; then
    echo "check_markdown: trailing whitespace in $doc:" >&2
    grep -nE '[[:space:]]+$' "$doc" | head -5 | sed 's/^/  line /' >&2
    fail=1
  fi

  if grep -q $'\r' "$doc"; then
    echo "check_markdown: CRLF line endings in $doc" >&2
    fail=1
  fi

  if [ -n "$(tail -c 1 "$doc")" ]; then
    echo "check_markdown: missing trailing newline in $doc" >&2
    fail=1
  fi

  # Tabs and fence balance share one pass so fenced code is exempt from the
  # tab rule (command transcripts legitimately contain tabs).
  if ! awk -v doc="$doc" '
    /^[[:space:]]*```/ { fence = !fence; next }
    !fence && /\t/ {
      printf "check_markdown: hard tab in %s line %d\n", doc, NR
      bad = 1
    }
    END {
      if (fence) {
        printf "check_markdown: unbalanced code fence in %s\n", doc
        bad = 1
      }
      exit bad
    }
  ' "$doc" >&2; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_markdown: docs are lint-clean (line length exempt by policy)"
