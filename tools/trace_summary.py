#!/usr/bin/env python3
"""Summarise a flight-recorder Chrome trace (fleet_demo --trace, or any
engine.chrome_trace() dump): top-N airtime, collision and defer contributors
per track, so a regression triage does not need Perfetto open.

  $ tools/trace_summary.py fleet_trace.json [--top N]

Timestamps/durations are simulated cycles (integers). Tracks are the
recorder's named lanes: station<id>, medium.<band>, sched/<component>.
"""
import argparse
import collections
import json
import sys


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    # Resolve track/process display names from metadata events.
    pid_names = {}
    tid_names = {}
    for ev in events:
        if ev.get("ph") != "M":
            continue
        name = ev.get("args", {}).get("name", "")
        if ev.get("name") == "process_name":
            pid_names[ev.get("pid")] = name
        elif ev.get("name") == "thread_name":
            tid_names[(ev.get("pid"), ev.get("tid"))] = name
    rows = []
    for ev in events:
        if ev.get("ph") == "M":
            continue
        pid, tid = ev.get("pid"), ev.get("tid")
        track = "{}/{}".format(
            pid_names.get(pid, "cell{}".format(pid)),
            tid_names.get((pid, tid), "tid{}".format(tid)),
        )
        rows.append(
            {
                "track": track,
                "name": ev.get("name", "?"),
                "ts": int(ev.get("ts", 0)),
                "dur": int(ev.get("dur", 0)),
                "args": ev.get("args", {}),
            }
        )
    return rows


def top_table(title, unit, counts, top_n):
    print("\n{} (top {}):".format(title, top_n))
    if not counts:
        print("  (none)")
        return
    width = max(len(k) for k in counts)
    for track, n in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top_n]:
        print("  {:<{w}}  {:>12} {}".format(track, n, unit, w=width))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--top", type=int, default=10, metavar="N",
                    help="rows per table (default 10)")
    args = ap.parse_args()

    rows = load_events(args.trace)
    if not rows:
        print("no events in {}".format(args.trace), file=sys.stderr)
        return 1

    airtime = collections.Counter()
    collisions = collections.Counter()
    defers = collections.Counter()
    mobility = collections.Counter()
    kinds = collections.Counter()
    mobility_kinds = (
        "topology_epoch", "associate", "reassociate", "handoff", "rate_change",
    )
    span = [min(r["ts"] for r in rows), max(r["ts"] + r["dur"] for r in rows)]
    for r in rows:
        kinds[r["name"]] += 1
        if r["name"] == "tx_start":
            # a = transmitting source id, b = airtime cycles.
            airtime["station{}".format(r["args"].get("a", "?"))] += r["dur"]
        elif r["name"] == "remote_carrier":
            airtime["remote:station{}".format(r["args"].get("a", "?"))] += r["dur"]
        elif r["name"] == "collision":
            collisions["station{}".format(r["args"].get("a", "?"))] += 1
        elif r["name"] in ("cca_defer", "nav_defer", "eifs_wait"):
            defers[r["track"]] += 1
        elif r["name"] in mobility_kinds:
            # topology_epoch carries no station id; per-station kinds do (a).
            if r["name"] == "topology_epoch":
                mobility["{}:{}".format(r["track"], r["name"])] += 1
            else:
                mobility["station{}:{}".format(
                    r["args"].get("a", "?"), r["name"])] += 1

    print("{}: {} events on [{}, {}] cycles".format(
        args.trace, len(rows), span[0], span[1]))
    print("\nevent kinds:")
    width = max(len(k) for k in kinds)
    for name, n in sorted(kinds.items(), key=lambda kv: (-kv[1], kv[0])):
        print("  {:<{w}}  {:>8}".format(name, n, w=width))

    top_table("airtime by transmitter", "cycles", airtime, args.top)
    top_table("collisions by transmitter", "frames", collisions, args.top)
    top_table("defers by track (cca/nav/eifs)", "events", defers, args.top)
    top_table("mobility (epoch/assoc/handoff/rate)", "events", mobility,
              args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
