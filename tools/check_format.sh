#!/usr/bin/env bash
# Format gate: clang-format -n --Werror over the format-clean file set.
#
# The .clang-format style is enforced incrementally: wholly new files are
# listed here and must stay clean. Legacy seed files — including ones that
# later PRs extend in place — are exempt until someone reformats the whole
# file, then appends it here. This keeps the gate green without a mass
# reformat of the seed tree.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping (CI installs it)" >&2
  exit 0
fi

FILES=(
  src/mac/link_mgr.hpp
  src/mac/link_mgr.cpp
  src/mac/nav.hpp
  src/mac/traffic_gen.hpp
  src/mac/traffic_gen.cpp
  src/net/audibility.hpp
  src/net/audibility.cpp
  src/net/cell.hpp
  src/net/cell.cpp
  src/net/channel_coupler.hpp
  src/net/channel_coupler.cpp
  src/net/contended_medium.hpp
  src/net/contended_medium.cpp
  src/net/topology_driver.hpp
  src/net/topology_driver.cpp
  src/obs/flight_recorder.hpp
  src/obs/flight_recorder.cpp
  src/obs/metrics.hpp
  src/obs/metrics.cpp
  src/obs/sched_recorder.hpp
  src/obs/trace_export.hpp
  src/obs/trace_export.cpp
  src/scenario/scenario_spec.hpp
  src/scenario/scenario_spec.cpp
  src/scenario/scenario_engine.hpp
  src/scenario/scenario_engine.cpp
  src/scenario/fleet_stats.hpp
  src/scenario/fleet_stats.cpp
  src/sim/multi_scheduler.hpp
  src/sim/multi_scheduler.cpp
  src/sim/scheduler.hpp
  src/sim/scheduler.cpp
  src/common/arena.hpp
  src/sim/checkpoint.hpp
  src/sim/checkpoint.cpp
  tests/checkpoint_test.cpp
  tests/alloc_test.cpp
  tests/wheel_test.cpp
  tests/net_test.cpp
  tests/obs_test.cpp
  tests/mobility_test.cpp
  tests/multicell_test.cpp
  tests/scenario_test.cpp
  bench/bench_net_contention.cpp
  bench/bench_net_mobility.cpp
  bench/bench_net_multicell.cpp
  bench/bench_net_rtscts_sweep.cpp
  bench/bench_scenario_fleet.cpp
  examples/fleet_demo.cpp
)

"$CLANG_FORMAT" --dry-run --Werror "${FILES[@]}"
echo "check_format: ${#FILES[@]} files clean"
