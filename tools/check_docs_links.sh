#!/usr/bin/env bash
# Docs link check: every relative markdown link in README.md and docs/*.md
# must point at an existing file, and every #anchor — in-page or on a linked
# markdown file — must match a heading actually present in the target (GitHub
# anchor derivation: lowercase, punctuation stripped, spaces to dashes).
# Keeps the docs/ book from rotting as files move and sections are renamed.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prints the derived GitHub anchor id of every heading in a markdown file,
# one per line. Fenced code blocks are excluded (a `# comment` inside one is
# not a heading).
anchors_of() {
  awk '
    /^```/ { fence = !fence; next }
    !fence && /^##* / {
      line = $0
      sub(/^#+[[:space:]]+/, "", line)
      gsub(/[[:space:]]+$/, "", line)
      line = tolower(line)
      gsub(/[^a-z0-9 _-]/, "", line)
      gsub(/ /, "-", line)
      print line
    }
  ' "$1"
}

has_anchor() {  # has_anchor FILE ANCHOR
  anchors_of "$1" | grep -qxF "$2"
}

fail=0
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  # Markdown links: [text](target). Skip http(s): and mailto:.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      # The GitHub CI badge resolves on github.com, not on disk.
      ../../actions/*) continue ;;
    esac
    path="${target%%#*}"
    anchor=""
    case "$target" in
      *\#*) anchor="${target#*#}" ;;
    esac
    if [ -z "$path" ]; then
      # In-page anchor: the heading must exist in this document.
      if [ -n "$anchor" ] && ! has_anchor "$doc" "$anchor"; then
        echo "check_docs_links: dead anchor in $doc -> #$anchor" >&2
        fail=1
      fi
      continue
    fi
    resolved=""
    if [ -e "$dir/$path" ]; then
      resolved="$dir/$path"
    elif [ -e "$path" ]; then
      resolved="$path"
    else
      echo "check_docs_links: dead link in $doc -> $target" >&2
      fail=1
      continue
    fi
    case "$resolved" in
      *.md)
        if [ -n "$anchor" ] && ! has_anchor "$resolved" "$anchor"; then
          echo "check_docs_links: dead anchor in $doc -> $target" >&2
          fail=1
        fi
        ;;
    esac
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_docs_links: all relative links and anchors resolve"
