#!/usr/bin/env bash
# Docs link check: every relative markdown link in README.md and docs/*.md
# must point at an existing file (anchors are stripped; absolute URLs and
# in-page anchors are ignored). Keeps the docs/ book from rotting as files
# move.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  # Markdown links: [text](target). Skip http(s):, mailto: and #anchors.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
      # The GitHub CI badge resolves on github.com, not on disk.
      ../../actions/*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "check_docs_links: dead link in $doc -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_docs_links: all relative links resolve"
